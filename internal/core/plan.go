package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"aquavol/internal/dag"
)

// volTol absorbs float rounding when comparing volumes against hardware
// limits.
const volTol = 1e-9

// Underflow describes one dispense that fell below the hardware minimum.
type Underflow struct {
	// Edge is the offending edge's id in the plan's graph, or -1 when the
	// underflow is a node-minimum violation.
	Edge int
	// Node is the consuming node's id.
	Node int
	// Volume is the assigned volume and Minimum the violated threshold.
	Volume, Minimum float64
}

func (u Underflow) String() string {
	where := fmt.Sprintf("edge %d into node %d", u.Edge, u.Node)
	if u.Edge < 0 {
		where = fmt.Sprintf("node %d total input", u.Node)
	}
	return fmt.Sprintf("underflow: %s gets %.4g nl < minimum %.4g nl", where, u.Volume, u.Minimum)
}

// Plan is an absolute volume assignment for one assay DAG (or one
// partition of it). All volumes are in nanoliters. Slices are indexed by
// node/edge ids of Graph; entries for deleted ids are zero.
type Plan struct {
	// Graph is the (possibly transformed) DAG the plan covers.
	Graph *dag.Graph
	// Method identifies which solver produced the plan: "dagsolve" or
	// "lp".
	Method string
	// NodeVnorm and EdgeVnorm are the relative volumes of §3.3 (only set
	// by DAGSolve; nil for LP plans). A node's Vnorm measures its total
	// *input-side* volume, normalized so every real output leaf is 1.
	NodeVnorm, EdgeVnorm []float64
	// NodeVolume is each node's total input volume (for sources: the
	// volume drawn/produced). EdgeVolume is the volume routed along each
	// edge.
	NodeVolume, EdgeVolume []float64
	// Production is each node's output-side volume after applying OutFrac
	// and excess discard.
	Production []float64
	// Scale is the factor that converted Vnorms to volumes (DAGSolve
	// only).
	Scale float64
	// Duals and ReducedCosts carry the LP optimality certificate when
	// Method is "lp": one dual per formulation constraint (lp.ConID
	// order) and one reduced cost per formulation variable (lp.VarID
	// order), straight from lp.Solution. internal/certify re-derives the
	// formulation and verifies the KKT conditions against them. Nil for
	// dagsolve plans (whose certificate is the conservation identity
	// itself).
	Duals, ReducedCosts []float64
	// Underflows lists hardware-minimum violations; a plan is feasible
	// iff it is empty.
	Underflows []Underflow
}

// Feasible reports whether the plan satisfies every hardware minimum.
func (p *Plan) Feasible() bool { return len(p.Underflows) == 0 }

// MinDispense returns the smallest edge volume in the plan and the edge it
// occurs on. It returns (nil, +Inf) for plans with no edges.
func (p *Plan) MinDispense() (*dag.Edge, float64) {
	min := math.Inf(1)
	var at *dag.Edge
	for _, e := range p.Graph.Edges() {
		if e == nil {
			continue
		}
		if v := p.EdgeVolume[e.ID()]; v < min {
			min = v
			at = e
		}
	}
	return at, min
}

// MaxNodeVolume returns the largest node input volume and its node.
func (p *Plan) MaxNodeVolume() (*dag.Node, float64) {
	max := math.Inf(-1)
	var at *dag.Node
	for _, n := range p.Graph.Nodes() {
		if n == nil {
			continue
		}
		if v := p.NodeVolume[n.ID()]; v > max {
			max = v
			at = n
		}
	}
	return at, max
}

// OutputVolumes returns the volumes of the plan's real outputs (non-excess
// leaves), keyed by node name, for reporting.
func (p *Plan) OutputVolumes() map[string]float64 {
	out := map[string]float64{}
	for _, n := range p.Graph.Nodes() {
		if n != nil && n.IsLeaf() && n.Kind != dag.Excess {
			out[n.Name] = p.NodeVolume[n.ID()]
		}
	}
	return out
}

// checkMinimums populates Underflows from the assigned volumes.
func (p *Plan) checkMinimums(cfg Config) {
	for _, e := range p.Graph.Edges() {
		if e == nil {
			continue
		}
		if v := p.EdgeVolume[e.ID()]; v < cfg.LeastCount-volTol {
			p.Underflows = append(p.Underflows, Underflow{
				Edge: e.ID(), Node: e.To.ID(), Volume: v, Minimum: cfg.LeastCount,
			})
		}
	}
	for _, n := range p.Graph.Nodes() {
		if n == nil || n.IsSource() {
			continue
		}
		if min := cfg.minForNode(n); min > cfg.LeastCount {
			if v := p.NodeVolume[n.ID()]; v < min-volTol {
				p.Underflows = append(p.Underflows, Underflow{
					Edge: -1, Node: n.ID(), Volume: v, Minimum: min,
				})
			}
		}
	}
}

// String renders the plan as a human-readable table of node volumes in
// topological order, for examples and debug output.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan (%s, scale %.4g):\n", p.Method, p.Scale)
	order := p.Graph.TopoOrder()
	for _, n := range order {
		fmt.Fprintf(&b, "  %-28s %8.3f nl", n.String(), p.NodeVolume[n.ID()])
		if p.NodeVnorm != nil {
			fmt.Fprintf(&b, "  (Vnorm %.4g)", p.NodeVnorm[n.ID()])
		}
		b.WriteByte('\n')
		ins := append([]*dag.Edge(nil), n.In()...)
		sort.Slice(ins, func(i, j int) bool { return ins[i].ID() < ins[j].ID() })
		for _, e := range ins {
			fmt.Fprintf(&b, "    <- %-22s %8.3f nl\n", e.From.Name, p.EdgeVolume[e.ID()])
		}
	}
	if len(p.Underflows) > 0 {
		b.WriteString("underflows:\n")
		for _, u := range p.Underflows {
			fmt.Fprintf(&b, "  %s\n", u)
		}
	}
	return b.String()
}

// ErrNeedsPartition reports a DAG containing unknown-volume nodes with
// consumers; such graphs must go through the staged/partitioned path
// (§3.5) rather than a single solve.
var ErrNeedsPartition = errors.New("core: graph has unknown-volume nodes with uses; partition first")
