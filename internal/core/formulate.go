package core

import (
	"errors"
	"fmt"
	"math"

	"aquavol/internal/dag"
	"aquavol/internal/lp"
)

// inf is the open upper bound for LP variables.
var inf = math.Inf(1)

// FormulateOptions selects optional constraint sets for the RVol LP
// formulation (§3.2, Fig. 3).
type FormulateOptions struct {
	// FlowConservation adds DAGSolve's second artificial constraint to the
	// LP: non-deficit inequalities become equalities (used for the §4.3
	// ablation measuring whether the extra constraints alone explain
	// DAGSolve's speed).
	FlowConservation bool
	// EqualOutputs adds DAGSolve's first artificial constraint: all real
	// outputs receive equal volume. It replaces the softer
	// output-to-output skew bounds.
	EqualOutputs bool
}

// ConstraintCounts tallies the formulation's constraints by the paper's
// classes; Total is the "LP constraints" column of Table 2.
type ConstraintCounts struct {
	MinVolume      int // class 1: per-edge least-count minimums (+ FFU minimums)
	Capacity       int // class 2: per-node maximum capacity
	NonDeficit     int // class 3: uses cannot exceed production
	Ratio          int // class 4: inbound edges in the specified mix ratio
	OutputToInput  int // class 5: output volume as a fraction of input
	OutputToOutput int // optional: outputs within a skew band (or equal)
}

// Total is the total number of constraints across classes.
func (c ConstraintCounts) Total() int {
	return c.MinVolume + c.Capacity + c.NonDeficit + c.Ratio + c.OutputToInput + c.OutputToOutput
}

func (c ConstraintCounts) String() string {
	return fmt.Sprintf("min=%d cap=%d nondeficit=%d ratio=%d out2in=%d out2out=%d total=%d",
		c.MinVolume, c.Capacity, c.NonDeficit, c.Ratio, c.OutputToInput, c.OutputToOutput, c.Total())
}

// Formulation is an RVol linear program built from an assay DAG.
type Formulation struct {
	// Prob is the underlying linear program; solve it via Solve.
	Prob *lp.Problem
	// EdgeVar maps edge ids to their volume variables.
	EdgeVar []lp.VarID
	// SourceVar maps source-node ids to their produced-volume variables
	// (-1 for non-source nodes).
	SourceVar []lp.VarID
	// ProdVar maps node ids to explicit production variables for nodes
	// whose output is a fraction of input (-1 otherwise).
	ProdVar []lp.VarID
	// Counts tallies constraints by class.
	Counts ConstraintCounts

	graph *dag.Graph
	cfg   Config
}

// ErrLPInfeasible reports that the RVol LP admits no feasible volume
// assignment (underflow is unavoidable without transforming the DAG).
var ErrLPInfeasible = errors.New("core: LP formulation infeasible")

// Formulate builds the RVol LP for g: variables for every edge volume and
// every source's produced volume; constraint classes 1-5 of §3.2 plus the
// optional output-to-output bounds; objective maximizing the sum of real
// output volumes.
//
// Minimum-volume constraints are installed as variable lower bounds (their
// count still reported in Counts.MinVolume), which is how practical LP
// solvers treat them.
//
// avail resolves constrained-input availability; it may be nil when the
// graph has none. Unknown-volume nodes must be leaves (partition first).
func Formulate(g *dag.Graph, cfg Config, opts FormulateOptions, avail Availability) (*Formulation, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			return nil, ErrNeedsPartition
		}
	}

	f := &Formulation{
		Prob:      lp.NewProblem(lp.Maximize),
		EdgeVar:   make([]lp.VarID, len(g.Edges())),
		SourceVar: make([]lp.VarID, len(g.Nodes())),
		ProdVar:   make([]lp.VarID, len(g.Nodes())),
		graph:     g,
		cfg:       cfg,
	}
	for i := range f.SourceVar {
		f.SourceVar[i] = -1
		f.ProdVar[i] = -1
	}

	// Class 1 via bounds: every routed volume is at least the least count.
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		v := f.Prob.AddVariable(fmt.Sprintf("e%d_%s_to_%s", e.ID(), e.From.Name, e.To.Name))
		// Upper bounds are implied by the per-node capacity rows; leaving
		// them open keeps the simplex tableau free of redundant rows.
		f.Prob.SetBounds(v, cfg.LeastCount, inf)
		f.EdgeVar[e.ID()] = v
		f.Counts.MinVolume++
	}

	inSum := func(n *dag.Node) []lp.Term {
		terms := make([]lp.Term, 0, len(n.In()))
		for _, e := range n.In() {
			terms = append(terms, lp.Term{Var: f.EdgeVar[e.ID()], Coef: 1})
		}
		return terms
	}
	outSum := func(n *dag.Node) []lp.Term {
		terms := make([]lp.Term, 0, len(n.Out()))
		for _, e := range n.Out() {
			terms = append(terms, lp.Term{Var: f.EdgeVar[e.ID()], Coef: 1})
		}
		return terms
	}
	// Safety margin ε inflates the non-deficit constraints: production must
	// cover (1+ε)× the outbound draws, mirroring ComputeVnormsMargin.
	outSumMargin := func(n *dag.Node) []lp.Term {
		terms := outSum(n)
		if cfg.SafetyMargin > 0 {
			for i := range terms {
				terms[i].Coef *= 1 + cfg.SafetyMargin
			}
		}
		return terms
	}

	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		id := n.ID()
		if n.IsSource() {
			cap := cfg.MaxCapacity
			if n.Kind == dag.ConstrainedInput {
				if avail == nil {
					return nil, fmt.Errorf("core: constrained input %v but no availability provided", n)
				}
				a, ok := avail(n)
				if !ok {
					return nil, fmt.Errorf("core: availability for constrained input %v unknown", n)
				}
				if a < cap {
					cap = a
				}
			}
			v := f.Prob.AddVariable(fmt.Sprintf("src_%s", n.Name))
			f.SourceVar[id] = v
			// Class 2 for sources: produced volume within capacity.
			f.Prob.AddConstraint(fmt.Sprintf("cap_%s", n.Name),
				[]lp.Term{{Var: v, Coef: 1}}, lp.LE, cap)
			f.Counts.Capacity++
			if !n.IsLeaf() {
				// Class 3: (1+ε)·Σ outbound ≤ produced.
				terms := append(outSumMargin(n), lp.Term{Var: v, Coef: -1})
				sense := lp.LE
				if opts.FlowConservation {
					sense = lp.EQ
				}
				f.Prob.AddConstraint(fmt.Sprintf("nondeficit_%s", n.Name), terms, sense, 0)
				f.Counts.NonDeficit++
			}
			continue
		}

		// Class 2: total inbound within capacity.
		f.Prob.AddConstraint(fmt.Sprintf("cap_%s", n.Name), inSum(n), lp.LE, cfg.MaxCapacity)
		f.Counts.Capacity++

		// FFU minimum volume (class 1 extension): total inbound at least
		// the kind's minimum, when configured above the least count.
		if min := cfg.minForNode(n); min > cfg.LeastCount {
			f.Prob.AddConstraint(fmt.Sprintf("min_%s", n.Name), inSum(n), lp.GE, min)
			f.Counts.MinVolume++
		}

		// Class 4: inbound edges pairwise in the specified ratio.
		if len(n.In()) >= 2 {
			ref := n.In()[0]
			for _, e := range n.In()[1:] {
				f.Prob.AddConstraint(fmt.Sprintf("ratio_%s_%d", n.Name, e.ID()),
					[]lp.Term{
						{Var: f.EdgeVar[e.ID()], Coef: ref.Frac},
						{Var: f.EdgeVar[ref.ID()], Coef: -e.Frac},
					}, lp.EQ, 0)
				f.Counts.Ratio++
			}
		}

		if n.IsLeaf() {
			continue
		}
		// Production: either the input sum directly, or an explicit
		// variable when output shrinks relative to input (class 5).
		prodTerms := inSum(n)
		if n.OutFrac != 1 {
			pv := f.Prob.AddVariable(fmt.Sprintf("prod_%s", n.Name))
			f.ProdVar[id] = pv
			terms := make([]lp.Term, 0, len(n.In())+1)
			for _, e := range n.In() {
				terms = append(terms, lp.Term{Var: f.EdgeVar[e.ID()], Coef: n.OutFrac})
			}
			terms = append(terms, lp.Term{Var: pv, Coef: -1})
			f.Prob.AddConstraint(fmt.Sprintf("out2in_%s", n.Name), terms, lp.EQ, 0)
			f.Counts.OutputToInput++
			prodTerms = []lp.Term{{Var: pv, Coef: 1}}
		}
		// Class 3: (1+ε)·Σ outbound ≤ production.
		terms := outSumMargin(n)
		for _, t := range prodTerms {
			terms = append(terms, lp.Term{Var: t.Var, Coef: -t.Coef})
		}
		sense := lp.LE
		if opts.FlowConservation {
			sense = lp.EQ
		}
		f.Prob.AddConstraint(fmt.Sprintf("nondeficit_%s", n.Name), terms, sense, 0)
		f.Counts.NonDeficit++
	}

	// Objective and output-to-output constraints over real outputs.
	var outputs []*dag.Node
	for _, n := range g.Nodes() {
		if n != nil && n.IsLeaf() && n.Kind != dag.Excess && !n.IsSource() {
			outputs = append(outputs, n)
		}
	}
	for _, o := range outputs {
		for _, e := range o.In() {
			f.Prob.SetObjective(f.EdgeVar[e.ID()], 1)
		}
	}
	if len(outputs) > 1 {
		ref := outputs[0]
		for _, o := range outputs[1:] {
			switch {
			case opts.EqualOutputs:
				terms := inSum(o)
				for _, e := range ref.In() {
					terms = append(terms, lp.Term{Var: f.EdgeVar[e.ID()], Coef: -1})
				}
				f.Prob.AddConstraint(fmt.Sprintf("eqout_%s", o.Name), terms, lp.EQ, 0)
				f.Counts.OutputToOutput++
			case cfg.OutputSkew > 0:
				lo := 1 - cfg.OutputSkew
				hi := 1 + cfg.OutputSkew
				termsLo := inSum(o)
				for _, e := range ref.In() {
					termsLo = append(termsLo, lp.Term{Var: f.EdgeVar[e.ID()], Coef: -lo})
				}
				f.Prob.AddConstraint(fmt.Sprintf("skewlo_%s", o.Name), termsLo, lp.GE, 0)
				termsHi := inSum(o)
				for _, e := range ref.In() {
					termsHi = append(termsHi, lp.Term{Var: f.EdgeVar[e.ID()], Coef: -hi})
				}
				f.Prob.AddConstraint(fmt.Sprintf("skewhi_%s", o.Name), termsHi, lp.LE, 0)
				f.Counts.OutputToOutput += 2
			}
		}
	}
	return f, nil
}

// Solve optimizes the formulation and extracts a Plan. It returns
// ErrLPInfeasible when no feasible assignment exists.
func (f *Formulation) Solve(opts lp.Options) (*Plan, error) {
	sol, err := f.Prob.Solve(opts)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, ErrLPInfeasible
	default:
		return nil, fmt.Errorf("core: LP solve ended with status %v", sol.Status)
	}
	g := f.graph
	p := &Plan{
		Graph:      g,
		Method:     "lp",
		NodeVolume: make([]float64, len(g.Nodes())),
		EdgeVolume: make([]float64, len(g.Edges())),
		Production: make([]float64, len(g.Nodes())),
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		p.EdgeVolume[e.ID()] = sol.Value(f.EdgeVar[e.ID()])
	}
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		id := n.ID()
		if n.IsSource() {
			p.NodeVolume[id] = sol.Value(f.SourceVar[id])
			p.Production[id] = p.NodeVolume[id]
			continue
		}
		in := 0.0
		for _, e := range n.In() {
			in += p.EdgeVolume[e.ID()]
		}
		p.NodeVolume[id] = in
		if f.ProdVar[id] >= 0 {
			p.Production[id] = sol.Value(f.ProdVar[id])
		} else {
			p.Production[id] = in
		}
	}
	// Carry the solver's optimality certificate so internal/certify can
	// verify the KKT conditions without re-solving.
	p.Duals = sol.Y
	p.ReducedCosts = sol.ReducedCost
	p.checkMinimums(f.cfg)
	return p, nil
}

// SolveLP formulates and solves the RVol LP in one step. A non-nil
// cfg.Budget is charged one work unit per simplex pivot.
func SolveLP(g *dag.Graph, cfg Config, opts FormulateOptions, avail Availability) (*Plan, error) {
	f, err := Formulate(g, cfg, opts, avail)
	if err != nil {
		return nil, err
	}
	return f.Solve(lp.Options{Budget: cfg.Budget})
}
