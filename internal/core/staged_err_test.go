package core_test

import (
	"errors"
	"strings"
	"testing"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// stagedFixture builds the minimal two-part staged assay: an unknown
// separation whose effluent feeds a downstream mix, so part 1 has one
// run-time-measured constrained input.
func stagedFixture(t *testing.T) (*dag.Graph, *core.StagedPlan) {
	t.Helper()
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	sep := g.AddUnary(dag.Separate, "sep", in1)
	sep.Unknown = true
	post := g.AddNode(dag.Mix, "post")
	g.AddPortEdge(sep, post, 0.5, dag.PortEffluent)
	g.AddEdge(in2, post, 0.5)
	g.AddUnary(dag.Sense, "end", post)
	sp, err := core.NewStagedPlan(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumParts() != 2 {
		t.Fatalf("parts = %d, want 2", sp.NumParts())
	}
	return g, sp
}

func TestSolvePartOutOfRange(t *testing.T) {
	_, sp := stagedFixture(t)
	for _, i := range []int{-1, sp.NumParts()} {
		if _, err := sp.SolvePart(i, nil); err == nil {
			t.Errorf("SolvePart(%d) = nil error, want out-of-range", i)
		}
	}
}

// TestSolvePartUnknownBoundary covers the unknown-source availability
// paths: a part with a run-time-measured constrained input must fail
// cleanly when no measure is supplied, and when the measure cannot
// report the requested source.
func TestSolvePartUnknownBoundary(t *testing.T) {
	_, sp := stagedFixture(t)
	if _, err := sp.SolveStatic(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.SolvePart(1, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("SolvePart with nil measure = %v, want unknown-availability error", err)
	}
	noAnswer := func(int, string) (float64, bool) { return 0, false }
	if _, err := sp.SolvePart(1, noAnswer); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("SolvePart with unanswering measure = %v, want unknown-availability error", err)
	}
}

// TestSolvePartTinyMeasurement covers the below-least-count path: a
// measured volume so small that scaling the part to fit it drives draws
// under the least count yields an infeasible plan (Underflows), not an
// error — exactly the signal the runtime degrades or replans on.
func TestSolvePartTinyMeasurement(t *testing.T) {
	_, sp := stagedFixture(t)
	if _, err := sp.SolveStatic(); err != nil {
		t.Fatal(err)
	}
	c := cfg()
	tiny := func(int, string) (float64, bool) { return c.LeastCount / 100, true }
	plan, err := sp.SolvePart(1, tiny)
	if err != nil {
		t.Fatalf("SolvePart with tiny measurement errored: %v", err)
	}
	if plan.Feasible() {
		t.Fatal("plan claims feasibility on a measurement far below the least count")
	}
	if len(plan.Underflows) == 0 {
		t.Fatal("infeasible plan carries no underflow diagnostics")
	}
}

// TestSolvePartOrderSentinel pins the ErrPartOrder wrap: part 1 solved
// when its producing part's output is missing must wrap the sentinel so
// callers can match with errors.Is.
func TestSolvePartOrderSentinel(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	x := g.AddMix("X", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 1})
	sep := g.AddUnary(dag.Separate, "sep", in2)
	sep.Unknown = true
	z := g.AddNode(dag.Mix, "Z")
	g.AddPortEdge(sep, z, 0.5, dag.PortEffluent)
	g.AddEdge(x, z, 0.5)
	g.AddUnary(dag.Sense, "sz", z)
	sp, err := core.NewStagedPlan(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT solve the static part first: the part consuming X's cut
	// production must refuse to solve out of order.
	measured := func(int, string) (float64, bool) { return 50, true }
	sawOrder := false
	for i := 0; i < sp.NumParts(); i++ {
		if !sp.Static(i) {
			if _, err := sp.SolvePart(i, measured); errors.Is(err, core.ErrPartOrder) {
				sawOrder = true
			}
		}
	}
	if !sawOrder {
		t.Fatal("no SolvePart call surfaced ErrPartOrder")
	}
}
