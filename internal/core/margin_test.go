package core_test

import (
	"math"
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// overProvision checks the margin guarantee on a plan: every node's net
// production covers (1+eps) times what its consumers draw, and nothing
// exceeds hardware capacity.
func overProvision(t *testing.T, plan *core.Plan, c core.Config, eps float64) {
	t.Helper()
	g := plan.Graph
	for _, n := range g.Nodes() {
		if n == nil || n.Kind == dag.Excess {
			continue
		}
		id := n.ID()
		if plan.NodeVolume[id] > c.MaxCapacity+1e-6 {
			t.Errorf("node %s volume %.6g exceeds capacity %.4g", n.Name, plan.NodeVolume[id], c.MaxCapacity)
		}
		var draws float64
		leaf := true
		for _, e := range n.Out() {
			if e.To.Kind == dag.Excess {
				continue
			}
			draws += plan.EdgeVolume[e.ID()]
			leaf = false
		}
		if leaf || draws == 0 {
			continue
		}
		if plan.Production[id]+1e-6 < (1+eps)*draws {
			t.Errorf("node %s: production %.6g < (1+%.2g)×draws %.6g",
				n.Name, plan.Production[id], eps, draws)
		}
	}
}

// A safety margin over-provisions every interior fluid without breaking
// feasibility or capacity on DAGSolve plans.
func TestMarginOverProvisionsDAGSolve(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		c := cfg()
		c.SafetyMargin = eps
		plan, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible() {
			t.Fatalf("eps=%g: glucose with margin must stay feasible: %v", eps, plan.Underflows)
		}
		overProvision(t, plan, c, eps)
	}
}

// The same guarantee holds for the LP formulation (margin scales the
// nondeficit constraints).
func TestMarginOverProvisionsLP(t *testing.T) {
	c := cfg()
	c.SafetyMargin = 0.1
	plan, err := core.SolveLP(assays.GlucoseDAG(), c, core.FormulateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("LP glucose with margin must stay feasible: %v", plan.Underflows)
	}
	overProvision(t, plan, c, 0.1)
}

// Margins must scale every in-edge of a node uniformly, preserving mix
// ratios exactly.
func TestMarginPreservesMixRatios(t *testing.T) {
	base, err := core.DAGSolve(assays.GlucoseDAG(), cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.SafetyMargin = 0.2
	withM, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range base.Graph.Nodes() {
		if n == nil || n.Kind != dag.Mix || len(n.In()) < 2 {
			continue
		}
		in := n.In()
		for i := 1; i < len(in); i++ {
			r0 := base.EdgeVolume[in[i].ID()] / base.EdgeVolume[in[0].ID()]
			r1 := withM.EdgeVolume[in[i].ID()] / withM.EdgeVolume[in[0].ID()]
			if !approx(r0, r1) {
				t.Errorf("mix %s: ratio changed %.6g → %.6g under margin", n.Name, r0, r1)
			}
		}
	}
}

// Margin-aware Manage still finds feasible plans for the paper assays.
func TestMarginThroughManage(t *testing.T) {
	c := cfg()
	c.SafetyMargin = 0.1
	for _, tc := range []struct {
		name string
		g    *dag.Graph
	}{
		{"glucose", assays.GlucoseDAG()},
		{"enzyme", assays.EnzymeDAG(2)},
	} {
		res, err := core.Manage(tc.g, c, core.ManageOptions{})
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !res.Plan.Feasible() {
			t.Errorf("%s: infeasible under 10%% margin", tc.name)
		}
	}
}

// Validate rejects out-of-range margins.
func TestMarginValidation(t *testing.T) {
	for _, eps := range []float64{-0.1, 1, 1.5, math.NaN()} {
		c := cfg()
		c.SafetyMargin = eps
		if err := c.Validate(); err == nil {
			t.Errorf("SafetyMargin=%v must fail validation", eps)
		}
	}
	c := cfg()
	c.SafetyMargin = 0.5
	if err := c.Validate(); err != nil {
		t.Errorf("SafetyMargin=0.5 must validate: %v", err)
	}
	if _, err := core.ComputeVnormsMargin(assays.GlucoseDAG(), -0.5); err == nil {
		t.Error("ComputeVnormsMargin(-0.5) must fail")
	}
}
