package core

import (
	"fmt"
	"math"

	"aquavol/internal/dag"
)

// IntPlan is a Plan rounded to integer multiples of the hardware least
// count: the solution to the IVol problem obtained by rounding the RVol
// solution (§3.2). Rounding perturbs mix ratios slightly; RatioError
// quantifies the damage (the paper reports ≤ 2% across its assays).
type IntPlan struct {
	// Plan is the rational plan this was rounded from.
	Plan *Plan
	// EdgeUnits holds each edge's volume in least-count units.
	EdgeUnits []int64
	// NodeUnits holds each node's total input volume in least-count units
	// (for sources: units produced, which equals units consumed downstream
	// plus nothing — sources produce exactly what their uses draw).
	NodeUnits []int64
	// MaxRatioError and MeanRatioError measure the relative deviation of
	// achieved mix fractions from the specified fractions, across every
	// inbound edge of every multi-input node.
	MaxRatioError, MeanRatioError float64
	// Underflows lists edges whose rounded volume fell below one unit and
	// nodes exceeding capacity (overflow), which rounding can in principle
	// cause; empty for all the paper's assays.
	Underflows []Underflow
	// Overflows lists node ids whose rounded input exceeds capacity.
	Overflows []int
}

// Round converts a rational plan to integer least-count units by rounding
// each edge volume to the nearest unit, recomputing node totals, and
// measuring the resulting ratio errors.
func Round(p *Plan, cfg Config) *IntPlan {
	g := p.Graph
	ip := &IntPlan{
		Plan:      p,
		EdgeUnits: make([]int64, len(g.Edges())),
		NodeUnits: make([]int64, len(g.Nodes())),
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		u := int64(math.Round(p.EdgeVolume[e.ID()] / cfg.LeastCount))
		ip.EdgeUnits[e.ID()] = u
		if u < 1 {
			ip.Underflows = append(ip.Underflows, Underflow{
				Edge: e.ID(), Node: e.To.ID(),
				Volume:  float64(u) * cfg.LeastCount,
				Minimum: cfg.LeastCount,
			})
		}
	}
	capUnits := int64(math.Floor(cfg.MaxCapacity/cfg.LeastCount + volTol))
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		var total int64
		if n.IsSource() {
			for _, e := range n.Out() {
				total += ip.EdgeUnits[e.ID()]
			}
		} else {
			for _, e := range n.In() {
				total += ip.EdgeUnits[e.ID()]
			}
		}
		ip.NodeUnits[n.ID()] = total
		if total > capUnits {
			ip.Overflows = append(ip.Overflows, n.ID())
		}
	}
	// Ratio errors at multi-input nodes.
	count := 0
	for _, n := range g.Nodes() {
		if n == nil || len(n.In()) < 2 {
			continue
		}
		var total int64
		for _, e := range n.In() {
			total += ip.EdgeUnits[e.ID()]
		}
		if total == 0 {
			continue
		}
		for _, e := range n.In() {
			achieved := float64(ip.EdgeUnits[e.ID()]) / float64(total)
			err := math.Abs(achieved-e.Frac) / e.Frac
			ip.MeanRatioError += err
			if err > ip.MaxRatioError {
				ip.MaxRatioError = err
			}
			count++
		}
	}
	if count > 0 {
		ip.MeanRatioError /= float64(count)
	}
	return ip
}

// Feasible reports whether rounding preserved all hardware limits.
func (ip *IntPlan) Feasible() bool {
	return len(ip.Underflows) == 0 && len(ip.Overflows) == 0
}

// Volume returns edge e's rounded volume in nanoliters.
func (ip *IntPlan) Volume(e *dag.Edge, cfg Config) float64 {
	return float64(ip.EdgeUnits[e.ID()]) * cfg.LeastCount
}

func (ip *IntPlan) String() string {
	return fmt.Sprintf("intplan: maxErr=%.3g%% meanErr=%.3g%% underflows=%d overflows=%d",
		100*ip.MaxRatioError, 100*ip.MeanRatioError, len(ip.Underflows), len(ip.Overflows))
}
