package core_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func cfg() core.Config { return core.DefaultConfig() }

// E1 (Fig. 5): DAGSolve on the Fig. 2 assay reproduces the paper's Vnorms
// and dispensed volumes.
func TestDAGSolveFigure2(t *testing.T) {
	g := assays.Fig2DAG()
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("plan infeasible: %v", plan.Underflows)
	}
	wantVnorm := map[string]float64{
		"A": 2.0 / 15, "B": 46.0 / 45, "C": 38.0 / 45,
		"K": 2.0 / 3, "L": 11.0 / 15, "M": 1, "N": 1,
	}
	for name, want := range wantVnorm {
		n := g.NodeByName(name)
		if got := plan.NodeVnorm[n.ID()]; !approx(got, want) {
			t.Errorf("Vnorm(%s) = %v, want %v", name, got, want)
		}
	}
	// Scale normalizes B (the max Vnorm) to 100 nl.
	b := g.NodeByName("B")
	if got := plan.NodeVolume[b.ID()]; !approx(got, 100) {
		t.Errorf("volume(B) = %v, want 100", got)
	}
	// Paper Fig. 5(b) values (rounded in the figure): A≈13, K≈65, and
	// edge volumes ≈52 (B→K), ≈48 (B→L), ≈24 (C→L), ≈59 (C→N).
	wantVol := map[string]float64{
		"A": 600.0 / 46, "K": 3000.0 / 46, "C": 3800.0 / 46,
		"L": 3300.0 / 46, "M": 4500.0 / 46, "N": 4500.0 / 46,
	}
	for name, want := range wantVol {
		n := g.NodeByName(name)
		if got := plan.NodeVolume[n.ID()]; !approx(got, want) {
			t.Errorf("volume(%s) = %v, want %v", name, got, want)
		}
	}
	edgeVol := func(from, to string) float64 {
		for _, e := range g.Edges() {
			if e.From.Name == from && e.To.Name == to {
				return plan.EdgeVolume[e.ID()]
			}
		}
		t.Fatalf("edge %s->%s not found", from, to)
		return 0
	}
	if got := edgeVol("B", "K"); !approx(got, 2400.0/46) {
		t.Errorf("volume(B->K) = %v, want %v (~52)", got, 2400.0/46)
	}
	if got := edgeVol("B", "L"); !approx(got, 2200.0/46) {
		t.Errorf("volume(B->L) = %v, want %v (~48)", got, 2200.0/46)
	}
	if got := edgeVol("C", "L"); !approx(got, 1100.0/46) {
		t.Errorf("volume(C->L) = %v, want %v (~24)", got, 1100.0/46)
	}
	if got := edgeVol("C", "N"); !approx(got, 2700.0/46) {
		t.Errorf("volume(C->N) = %v, want %v (~59)", got, 2700.0/46)
	}
}

// E2 (Fig. 12 / §4.2): glucose assay is fully static; the reagent is the
// bottleneck (Vnorm 151/45) and the smallest dispense is 3.3 nl.
func TestGlucoseVolumes(t *testing.T) {
	g := assays.GlucoseDAG()
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("glucose should be feasible, got %v", plan.Underflows)
	}
	reagent := g.NodeByName("Reagent")
	if got := plan.NodeVnorm[reagent.ID()]; !approx(got, 151.0/45) {
		t.Errorf("Vnorm(Reagent) = %v, want %v", got, 151.0/45)
	}
	maxN, maxV := plan.MaxNodeVolume()
	if maxN.Name != "Reagent" || !approx(maxV, 100) {
		t.Errorf("max volume at %s = %v, want Reagent = 100", maxN.Name, maxV)
	}
	_, min := plan.MinDispense()
	if !approx(min, 100.0/9/(151.0/45)) { // (1/9 Vnorm) × scale ≈ 3.311 nl
		t.Errorf("min dispense = %v, want ≈3.311", min)
	}
	if min < 3.3 || min > 3.35 {
		t.Errorf("min dispense = %v nl, paper reports 3.3 nl", min)
	}
}

// LP formulation of glucose has exactly the 49 constraints of Table 2.
func TestGlucoseLPConstraintCount(t *testing.T) {
	g := assays.GlucoseDAG()
	f, err := core.Formulate(g, cfg(), core.FormulateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Counts
	if c.MinVolume != 15 || c.Capacity != 13 || c.NonDeficit != 8 || c.Ratio != 5 || c.OutputToOutput != 8 {
		t.Errorf("constraint classes = %v, want min=15 cap=13 nondeficit=8 ratio=5 out2out=8", c)
	}
	if c.Total() != 49 {
		t.Errorf("total constraints = %d, want 49 (Table 2)", c.Total())
	}
}

func TestGlucoseLPFeasible(t *testing.T) {
	g := assays.GlucoseDAG()
	plan, err := core.SolveLP(g, cfg(), core.FormulateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("LP plan infeasible: %v", plan.Underflows)
	}
	// Outputs must respect the 10% skew bound.
	outs := plan.OutputVolumes()
	var ref float64
	for _, v := range outs {
		ref = v
		break
	}
	for name, v := range outs {
		if v < 0.9*ref/1.1-1e-6 || v > 1.1*ref/0.9+1e-6 {
			t.Errorf("output %s = %v violates skew band around %v", name, v, ref)
		}
	}
}

func TestLPAblationVariants(t *testing.T) {
	g := assays.GlucoseDAG()
	for _, opt := range []core.FormulateOptions{
		{FlowConservation: true},
		{EqualOutputs: true},
		{FlowConservation: true, EqualOutputs: true},
	} {
		plan, err := core.SolveLP(g, cfg(), opt, nil)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if !plan.Feasible() {
			t.Fatalf("opts %+v: infeasible", opt)
		}
	}
}

// E4 (Fig. 14 / §4.2): the enzyme assay underflows at the 1:999 dilution
// with 9.8 pl; the diluent is the Vnorm bottleneck at ≈54.
func TestEnzymeBaselineUnderflow(t *testing.T) {
	g := assays.EnzymeDAG(4)
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible() {
		t.Fatal("enzyme baseline should underflow (paper: 9.8 pl at the 1:999 mix)")
	}
	dil := g.NodeByName("diluent")
	if got := plan.NodeVnorm[dil.ID()]; !approx(got, 16*(0.5+0.9+0.99+0.999)) {
		t.Errorf("Vnorm(diluent) = %v, want %v (≈54)", got, 16*(0.5+0.9+0.99+0.999))
	}
	// Dilution nodes have Vnorm 16/3 and get ≈9.8 nl.
	d1 := g.NodeByName("enz_dil1")
	if got := plan.NodeVnorm[d1.ID()]; !approx(got, 16.0/3) {
		t.Errorf("Vnorm(dilution) = %v, want 16/3", got)
	}
	if got := plan.NodeVolume[d1.ID()]; math.Abs(got-9.83) > 0.01 {
		t.Errorf("dilution volume = %v nl, paper reports 9.8 nl", got)
	}
	_, min := plan.MinDispense()
	if math.Abs(min-0.009836) > 1e-4 {
		t.Errorf("min dispense = %v nl, paper reports 9.8 pl", min)
	}
	// LP cannot save it either (paper: "we found that LP also fails").
	_, err = core.SolveLP(g, cfg(), core.FormulateOptions{}, nil)
	if !errors.Is(err, core.ErrLPInfeasible) {
		t.Errorf("LP on baseline enzyme: err = %v, want ErrLPInfeasible", err)
	}
}

// cascadeEnzyme applies the paper's transform: each 1:999 dilution becomes
// three cascaded 1:9 mixes.
func cascadeEnzyme(t *testing.T, g *dag.Graph) {
	t.Helper()
	for _, name := range []string{"inh_dil4", "enz_dil4", "sub_dil4"} {
		n := g.NodeByName(name)
		if n == nil {
			t.Fatalf("missing %s", name)
		}
		if err := g.Cascade(n, 3); err != nil {
			t.Fatal(err)
		}
	}
}

// replicateDiluent replicates the diluent input three ways, grouping uses
// by reagent as the paper does.
func replicateDiluent(t *testing.T, g *dag.Graph) {
	t.Helper()
	dil := g.NodeByName("diluent")
	groups := map[string]int{"inh": 0, "enz": 1, "sub": 2}
	_, err := g.Replicate(dil, 3, func(e *dag.Edge) int {
		return groups[e.To.Name[:3]]
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnzymeCascadeOnly(t *testing.T) {
	g := assays.EnzymeDAG(4)
	cascadeEnzyme(t, g)
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dil := g.NodeByName("diluent")
	wantDil := 16 * (0.5 + 0.9 + 0.99 + 3*0.9) // ≈81.4 (paper: 81)
	if got := plan.NodeVnorm[dil.ID()]; !approx(got, wantDil) {
		t.Errorf("Vnorm(diluent) = %v, want %v", got, wantDil)
	}
	// Cascade intermediates carry Vnorm 16/3, like the original node.
	st := g.NodeByName("enz_dil4~cascade1")
	wantProd := 16.0 / 3
	gotInput := plan.NodeVnorm[st.ID()]
	if !approx(gotInput, wantProd) {
		t.Errorf("Vnorm(cascade stage) = %v, want 16/3", gotInput)
	}
	if plan.Feasible() {
		t.Fatal("cascade alone should still underflow (paper: 65.6 pl at the 1:99 mix)")
	}
	_, min := plan.MinDispense()
	if math.Abs(min-0.0655) > 1e-3 {
		t.Errorf("min dispense = %v nl, paper reports 65.6 pl", min)
	}
}

func TestEnzymeReplicationOnly(t *testing.T) {
	g := assays.EnzymeDAG(4)
	replicateDiluent(t, g)
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible() {
		t.Fatal("replication alone should still underflow (paper: 29.5 pl)")
	}
	_, min := plan.MinDispense()
	if math.Abs(min-0.0295) > 1e-3 {
		t.Errorf("min dispense = %v nl, paper reports 29.5 pl", min)
	}
}

func TestEnzymeCascadePlusReplication(t *testing.T) {
	g := assays.EnzymeDAG(4)
	cascadeEnzyme(t, g)
	replicateDiluent(t, g)
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("cascade + replication should fix the enzyme assay, got %v", plan.Underflows)
	}
	// Replicated diluent Vnorm drops to ≈27 and the minimum dispense rises
	// to ≈196 pl (paper's numbers).
	rep := g.NodeByName("diluent")
	want := 16 * (0.5 + 0.9 + 0.99 + 3*0.9) / 3
	if got := plan.NodeVnorm[rep.ID()]; !approx(got, want) {
		t.Errorf("Vnorm(diluent replica) = %v, want %v (≈27)", got, want)
	}
	_, min := plan.MinDispense()
	if math.Abs(min-0.1965) > 2e-3 {
		t.Errorf("min dispense = %v nl, paper reports 196 pl", min)
	}
}

// The automatic hierarchy fixes the enzyme assay without manual transforms.
func TestManageEnzyme(t *testing.T) {
	g := assays.EnzymeDAG(4)
	res, err := core.Manage(g, cfg(), core.ManageOptions{SkipLP: true})
	if err != nil {
		t.Fatalf("Manage failed: %v\ntrace: %s", err, strings.Join(res.Trace, "\n"))
	}
	if !res.Plan.Feasible() {
		t.Fatal("managed plan infeasible")
	}
	if len(res.Transforms) == 0 {
		t.Fatal("expected at least one transform")
	}
	// The original graph must be untouched.
	if g.NodeByName("enz_dil4~cascade1") != nil {
		t.Fatal("Manage mutated the input graph")
	}
	// The first transform must be a cascade of a 1:999 dilution.
	if res.Transforms[0].Kind != core.TransformCascade {
		t.Errorf("first transform = %v, want cascade", res.Transforms[0])
	}
}

func TestManageGlucoseNoTransforms(t *testing.T) {
	g := assays.GlucoseDAG()
	res, err := core.Manage(g, cfg(), core.ManageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedLP || len(res.Transforms) != 0 {
		t.Errorf("glucose should solve directly via DAGSolve: usedLP=%v transforms=%v",
			res.UsedLP, res.Transforms)
	}
}

// An irreparable assay (skew beyond hardware, excess forbidden) fails with
// ErrUnmanageable.
func TestManageUnmanageable(t *testing.T) {
	g := dag.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	a.NoExcess = true
	b.NoExcess = true
	m := g.AddMix("m", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: 5000})
	g.AddUnary(dag.Sense, "s", m)
	_, err := core.Manage(g, cfg(), core.ManageOptions{})
	if !errors.Is(err, core.ErrUnmanageable) {
		t.Fatalf("err = %v, want ErrUnmanageable", err)
	}
}

func TestManageResourceLimit(t *testing.T) {
	c := cfg()
	c.MaxFluidNodes = 10 // enzyme needs hundreds
	g := assays.EnzymeDAG(4)
	_, err := core.Manage(g, c, core.ManageOptions{SkipLP: true})
	if !errors.Is(err, core.ErrResourceLimit) {
		t.Fatalf("err = %v, want ErrResourceLimit", err)
	}
}

// E3 (Fig. 13): glycomics partitions into four parts; X2 (the second
// separation's effluent) has Vnorm 1/204 in the third partition; buffer3a
// splits 50/50.
func TestGlycomicsStagedPlan(t *testing.T) {
	g := assays.GlycomicsDAG()
	sp, err := core.NewStagedPlan(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumParts() != 4 {
		t.Fatalf("parts = %d, want 4", sp.NumParts())
	}
	// Locate the constrained input sourced from sep2 and check its Vnorm.
	sep2 := g.NodeByName("sep2")
	found := false
	for _, b := range sp.Partition.Bindings {
		if b.SourceID == sep2.ID() {
			found = true
			vn := sp.Vnorms[b.Part].Node[b.NodeID]
			if !approx(vn, 1.0/204) {
				t.Errorf("Vnorm(X2) = %v, want 1/204 (paper Fig. 13)", vn)
			}
		}
	}
	if !found {
		t.Fatal("no binding for sep2 effluent")
	}
	// buffer3a splits into two constrained inputs of 50 nl each.
	b3a := g.NodeByName("buffer3a")
	shares := 0
	for _, b := range sp.Partition.Bindings {
		if b.SourceID == b3a.ID() {
			shares++
			if !approx(b.Share, 0.5) {
				t.Errorf("buffer3a share = %v, want 0.5", b.Share)
			}
		}
	}
	if shares != 2 {
		t.Fatalf("buffer3a constrained inputs = %d, want 2", shares)
	}

	// Only the first part is static (no unknown upstream).
	done, err := sp.SolveStatic()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != 0 {
		t.Fatalf("static parts = %v, want [0]", done)
	}
	p0 := sp.Plans[0]
	if !p0.Feasible() {
		t.Fatalf("part 0 infeasible: %v", p0.Underflows)
	}
	// Part 0: m1 gets the full 100 nl, its two inputs 50 nl each.
	pg := sp.Partition.Parts[0]
	m1 := pg.NodeByName("m1")
	if !approx(p0.NodeVolume[m1.ID()], 100) {
		t.Errorf("m1 volume = %v, want 100", p0.NodeVolume[m1.ID()])
	}

	// Run-time: separations yield 40% of their input.
	measure := func(orig int, port string) (float64, bool) {
		n := g.Node(orig)
		if !n.Unknown {
			return 0, false
		}
		// The separation's planned input volume comes from its own part's
		// plan; emulate a 40% effluent yield.
		pi := sp.Partition.PartOf[orig]
		var local int
		for lid, oid := range sp.Partition.OrigOf[pi] {
			if oid == orig {
				local = lid
			}
		}
		in := sp.Plans[pi].NodeVolume[local]
		return 0.4 * in, true
	}
	for i := 1; i < sp.NumParts(); i++ {
		plan, err := sp.SolvePart(i, measure)
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if !plan.Feasible() {
			t.Logf("part %d underflows (acceptable if yield too low): %v", i, plan.Underflows)
		}
	}
}

func TestStagedPartOrderEnforced(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	x := g.AddMix("X", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 1})
	u := g.AddUnary(dag.Separate, "U", in2)
	u.Unknown = true
	y := g.AddMix("Y", dag.Part{Source: x, Ratio: 1}, dag.Part{Source: in1, Ratio: 1})
	g.AddUnary(dag.Sense, "sy", y)
	z := g.AddNode(dag.Mix, "Z")
	g.AddPortEdge(u, z, 0.5, dag.PortEffluent)
	e := g.Edges()[len(g.Edges())-1]
	_ = e
	g.AddEdge(x, z, 0.5)
	g.AddUnary(dag.Sense, "sz", z)
	sp, err := core.NewStagedPlan(g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Solving a later part that needs X's production before X's part is an
	// ordering error.
	for i := 1; i < sp.NumParts(); i++ {
		if _, err := sp.SolvePart(i, func(int, string) (float64, bool) { return 50, true }); err != nil {
			if !errors.Is(err, core.ErrPartOrder) {
				t.Fatalf("err = %v, want ErrPartOrder", err)
			}
			return
		}
	}
	t.Fatal("expected an ErrPartOrder for some part")
}

// E5 (§4.2): rounding to the least count keeps ratio errors within ~2%.
func TestRoundingError(t *testing.T) {
	c := cfg()
	g := assays.GlucoseDAG()
	plan, err := core.DAGSolve(g, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := core.Round(plan, c)
	if !ip.Feasible() {
		t.Fatalf("rounded glucose infeasible: %v %v", ip.Underflows, ip.Overflows)
	}
	if ip.MaxRatioError > 0.02 {
		t.Errorf("glucose max ratio error = %v, paper reports ≤2%%", ip.MaxRatioError)
	}

	ge := assays.EnzymeDAG(4)
	cascadeEnzyme(t, ge)
	replicateDiluent(t, ge)
	planE, err := core.DAGSolve(ge, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	ipE := core.Round(planE, c)
	if !ipE.Feasible() {
		t.Fatalf("rounded enzyme infeasible: %v %v", ipE.Underflows, ipE.Overflows)
	}
	avg := (ip.MeanRatioError + ipE.MeanRatioError) / 2
	if avg > 0.02 {
		t.Errorf("mean ratio error across glucose+enzyme = %v, paper reports ≤2%%", avg)
	}
}

func TestErrNeedsPartition(t *testing.T) {
	g := assays.GlycomicsDAG()
	_, err := core.DAGSolve(g, cfg(), nil)
	if !errors.Is(err, core.ErrNeedsPartition) {
		t.Fatalf("err = %v, want ErrNeedsPartition", err)
	}
	_, err = core.Formulate(g, cfg(), core.FormulateOptions{}, nil)
	if !errors.Is(err, core.ErrNeedsPartition) {
		t.Fatalf("Formulate err = %v, want ErrNeedsPartition", err)
	}
}

func TestLPInfeasibleExtremeMix(t *testing.T) {
	g := dag.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddMix("m", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: 1500})
	g.AddUnary(dag.Sense, "s", m)
	_, err := core.SolveLP(g, cfg(), core.FormulateOptions{}, nil)
	if !errors.Is(err, core.ErrLPInfeasible) {
		t.Fatalf("err = %v, want ErrLPInfeasible", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []core.Config{
		{MaxCapacity: 0, LeastCount: 0.1},
		{MaxCapacity: 100, LeastCount: 0},
		{MaxCapacity: 1, LeastCount: 10},
		{MaxCapacity: 100, LeastCount: 0.1, OutputSkew: 1.5},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Config %+v should be invalid", c)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestMinNodeVolumeEnforced(t *testing.T) {
	c := cfg()
	c.MinNodeVolume = map[dag.Kind]float64{dag.Separate: 500} // > MaxCapacity: impossible
	g := dag.New()
	a := g.AddInput("a")
	sep := g.AddUnary(dag.Separate, "sep", a)
	sep.OutFrac = 0.5
	g.AddUnary(dag.Sense, "s", sep)
	plan, err := core.DAGSolve(g, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible() {
		t.Fatal("separator minimum of 500 nl cannot be met with 100 nl capacity")
	}
}

func TestOutFracPropagation(t *testing.T) {
	// A concentrate step that halves volume doubles the upstream demand.
	g := dag.New()
	a := g.AddInput("a")
	conc := g.AddUnary(dag.Concentrate, "conc", a)
	conc.OutFrac = 0.5
	g.AddUnary(dag.Sense, "s", conc)
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cn := g.NodeByName("conc")
	// Output side 1 → input side 2; a supplies 2.
	if !approx(plan.NodeVnorm[cn.ID()], 2) {
		t.Errorf("Vnorm(conc) = %v, want 2", plan.NodeVnorm[cn.ID()])
	}
	if !approx(plan.NodeVolume[cn.ID()], 100) {
		t.Errorf("volume(conc input) = %v, want 100 (it is the bottleneck)", plan.NodeVolume[cn.ID()])
	}
	if !approx(plan.Production[cn.ID()], 50) {
		t.Errorf("production(conc) = %v, want 50", plan.Production[cn.ID()])
	}
}

// randomKnownDAG builds a random statically-known DAG (no unknown nodes).
func randomKnownDAG(r *rand.Rand) *dag.Graph {
	g := dag.New()
	var pool []*dag.Node
	nIn := 2 + r.Intn(3)
	for i := 0; i < nIn; i++ {
		pool = append(pool, g.AddInput("in"))
	}
	nOps := 2 + r.Intn(8)
	for i := 0; i < nOps; i++ {
		switch r.Intn(4) {
		case 0, 1, 2:
			k := 2
			if len(pool) > 2 && r.Intn(2) == 0 {
				k = 3
			}
			parts := make([]dag.Part, 0, k)
			seen := map[*dag.Node]bool{}
			for len(parts) < k {
				src := pool[r.Intn(len(pool))]
				if seen[src] {
					continue
				}
				seen[src] = true
				parts = append(parts, dag.Part{Source: src, Ratio: float64(1 + r.Intn(9))})
			}
			pool = append(pool, g.AddMix("m", parts...))
		case 3:
			pool = append(pool, g.AddUnary(dag.Incubate, "h", pool[r.Intn(len(pool))]))
		}
	}
	return g
}

// Property: DAGSolve plans respect ratios, flow conservation, and capacity;
// when DAGSolve is feasible, LP is feasible too (DAGSolve over-constrains).
func TestQuickDAGSolveInvariants(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomKnownDAG(r)
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			return false
		}
		for _, n := range g.Nodes() {
			// Capacity.
			if plan.NodeVolume[n.ID()] > c.MaxCapacity+1e-6 {
				return false
			}
			// Ratios.
			in := 0.0
			for _, e := range n.In() {
				in += plan.EdgeVolume[e.ID()]
			}
			for _, e := range n.In() {
				if math.Abs(plan.EdgeVolume[e.ID()]-e.Frac*in) > 1e-6 {
					return false
				}
			}
			// Flow conservation (DAGSolve's artificial constraint): the
			// production of every non-leaf equals the sum of its uses.
			if !n.IsLeaf() {
				out := 0.0
				for _, e := range n.Out() {
					out += plan.EdgeVolume[e.ID()]
				}
				if math.Abs(out-plan.Production[n.ID()]) > 1e-6 &&
					math.Abs(out-plan.Production[n.ID()]/(1-n.Discard)) > 1e-6 {
					return false
				}
			}
		}
		if plan.Feasible() {
			lpPlan, err := core.SolveLP(g, c, core.FormulateOptions{}, nil)
			if err != nil || !lpPlan.Feasible() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: rounding a feasible plan never changes any mix fraction by more
// than leastCount/minEdge relative error.
func TestQuickRoundingBound(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomKnownDAG(r)
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			return false
		}
		if !plan.Feasible() {
			return true
		}
		ip := core.Round(plan, c)
		_, minEdge := plan.MinDispense()
		bound := c.LeastCount / minEdge // coarse but sound bound
		return ip.MaxRatioError <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
