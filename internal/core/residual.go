package core

import (
	"errors"
	"fmt"

	"aquavol/internal/budget"
	"aquavol/internal/dag"
)

// ErrResidualInfeasible reports that a residual re-solve produced no
// feasible plan: the live volumes cannot supply the remaining DAG
// without violating a hardware minimum (e.g. a rescaled dispense would
// underflow the least count), or the residual still contains unmeasured
// unknown-volume nodes. Callers fall back to regeneration.
var ErrResidualInfeasible = errors.New("core: residual replan infeasible")

// LiveVolume reports the volume currently available from an executed
// node's output port — a live vessel reading, already discounted by any
// caller-side safety padding.
type LiveVolume func(sourceID int, port string) (float64, bool)

// ResidualPlan is a successful residual re-solve: absolute volumes for
// the not-yet-executed remainder of an assay, scaled to what the live
// vessels actually hold.
type ResidualPlan struct {
	// Plan covers the residual graph (Residual.Graph ids).
	Plan *Plan
	// Residual is the extracted remainder the plan covers.
	Residual *dag.Residual
	// Method is the solver that produced the plan ("dagsolve" or "lp").
	Method string
}

// EdgeVolumes maps ORIGINAL edge ids to their re-planned absolute
// volumes, for patching into the remaining instructions.
func (rp *ResidualPlan) EdgeVolumes() map[int]float64 {
	out := make(map[int]float64, len(rp.Residual.EdgeOf))
	for orig, res := range rp.Residual.EdgeOf {
		out[orig] = rp.Plan.EdgeVolume[res]
	}
	return out
}

// InputVolumes maps ORIGINAL node ids of pending natural inputs to
// their re-planned load volumes.
func (rp *ResidualPlan) InputVolumes() map[int]float64 {
	out := map[int]float64{}
	for res, orig := range rp.Residual.NodeOf {
		if n := rp.Residual.Graph.Node(res); n != nil && n.Kind == dag.Input {
			out[orig] = rp.Plan.NodeVolume[res]
		}
	}
	return out
}

// SolveResidual re-runs volume assignment over a residual DAG (§3.3's
// DAGSolve, then the LP fallback) with the live vessel volumes as
// constrained-input availability: the forward pass scales the whole
// remainder down (never past MaxCapacity up) so that no pending draw
// exceeds what its source vessel still holds, preserving mix ratios.
// cfg.SafetyMargin applies to the re-solve exactly as it did to the
// original plan. Returns ErrResidualInfeasible (with the underlying
// detail wrapped) when neither solver finds a feasible plan — including
// when the residual still contains unknown-volume interior nodes, whose
// measurements have not happened yet.
//
// SolveResidual is certified parallel-safe: concurrent replans are
// race-free provided the live callback is.
//
//fluidvet:parallelsafe
func SolveResidual(r *dag.Residual, cfg Config, live LiveVolume) (*ResidualPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bound := make(map[int]dag.ResidualBoundary, len(r.Boundaries))
	for _, b := range r.Boundaries {
		bound[b.CINode] = b
	}
	avail := func(ci *dag.Node) (float64, bool) {
		b, ok := bound[ci.ID()]
		if !ok {
			return 0, false
		}
		return live(b.SourceID, b.SourcePort)
	}
	plan, err := DAGSolve(r.Graph, cfg, avail)
	if err != nil {
		// A tripped budget is a stop, not infeasibility: wrap nothing, so
		// the cause reaches the caller instead of triggering the
		// regeneration fallback replan callers apply to infeasible errors.
		if budget.IsStop(err) {
			return nil, err
		}
		// Unknown interior nodes (ErrNeedsPartition), unknown availability,
		// degenerate residuals: all mean "cannot replan", not "cannot run".
		return nil, fmt.Errorf("%w: %w", ErrResidualInfeasible, err)
	}
	if plan.Feasible() {
		return &ResidualPlan{Plan: plan, Residual: r, Method: plan.Method}, nil
	}
	lpPlan, lerr := SolveLP(r.Graph, cfg, FormulateOptions{}, avail)
	if lerr == nil && lpPlan.Feasible() {
		return &ResidualPlan{Plan: lpPlan, Residual: r, Method: lpPlan.Method}, nil
	}
	if lerr != nil && !errors.Is(lerr, ErrLPInfeasible) {
		return nil, lerr
	}
	detail := "no feasible plan"
	if len(plan.Underflows) > 0 {
		detail = plan.Underflows[0].String()
	}
	return nil, fmt.Errorf("%w: %s", ErrResidualInfeasible, detail)
}
