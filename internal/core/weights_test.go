package core_test

import (
	"math"
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// Weighted outputs: preferring N 3:1 over M skews the dispensed volumes
// in exactly that proportion (§3.3's "arbitrary output ratios" remark).
func TestWeightedOutputs(t *testing.T) {
	g := assays.Fig2DAG()
	m := g.NodeByName("M")
	n := g.NodeByName("N")
	vn, err := core.ComputeVnormsWeighted(g, map[int]float64{m.ID(): 1, n.ID(): 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Dispense(vn, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := plan.NodeVolume[n.ID()] / plan.NodeVolume[m.ID()]
	if !approx(ratio, 3) {
		t.Fatalf("N/M volume ratio = %v, want 3", ratio)
	}
	// The bottleneck still receives exactly the machine maximum.
	_, max := plan.MaxNodeVolume()
	if !approx(max, 100) {
		t.Fatalf("max volume = %v, want 100", max)
	}
}

func TestWeightedOutputsValidation(t *testing.T) {
	g := assays.Fig2DAG()
	b := g.NodeByName("B") // an input, not an output
	if _, err := core.ComputeVnormsWeighted(g, map[int]float64{b.ID(): 2}); err == nil {
		t.Fatal("want error for weighting a non-output node")
	}
	m := g.NodeByName("M")
	if _, err := core.ComputeVnormsWeighted(g, map[int]float64{m.ID(): -1}); err == nil {
		t.Fatal("want error for non-positive weight")
	}
	if _, err := core.ComputeVnormsWeighted(g, map[int]float64{9999: 1}); err == nil {
		t.Fatal("want error for missing node")
	}
}

// Equal weights reduce to plain ComputeVnorms.
func TestWeightedDefaultMatchesPlain(t *testing.T) {
	g := assays.GlucoseDAG()
	plain, err := core.ComputeVnorms(g)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := core.ComputeVnormsWeighted(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Node {
		if !approx(plain.Node[i], weighted.Node[i]) {
			t.Fatalf("node %d: %v vs %v", i, plain.Node[i], weighted.Node[i])
		}
	}
}

// Minimum-output dispensing (§3.5): require 10 nl of each Fig. 2 output
// and check the plan delivers exactly that with minimal inputs.
func TestDispenseForMinOutputs(t *testing.T) {
	g := assays.Fig2DAG()
	vn, err := core.ComputeVnorms(g)
	if err != nil {
		t.Fatal(err)
	}
	m := g.NodeByName("M")
	n := g.NodeByName("N")
	plan, err := core.DispenseForMinOutputs(vn, cfg(), map[int]float64{
		m.ID(): 10, n.ID(): 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(plan.NodeVolume[m.ID()], 10) || !approx(plan.NodeVolume[n.ID()], 10) {
		t.Fatalf("outputs = %v, %v; want 10, 10",
			plan.NodeVolume[m.ID()], plan.NodeVolume[n.ID()])
	}
	// Inputs shrink proportionally: B needs (46/45)×10 ≈ 10.2 nl instead
	// of 100.
	b := g.NodeByName("B")
	if !approx(plan.NodeVolume[b.ID()], 10*46.0/45) {
		t.Fatalf("B volume = %v, want %v", plan.NodeVolume[b.ID()], 10*46.0/45)
	}
	if !plan.Feasible() {
		t.Fatalf("plan should be feasible: %v", plan.Underflows)
	}
}

// Requiring more than the hardware can deliver is reported, not silently
// clipped.
func TestDispenseForMinOutputsOverflow(t *testing.T) {
	g := assays.Fig2DAG()
	vn, err := core.ComputeVnorms(g)
	if err != nil {
		t.Fatal(err)
	}
	m := g.NodeByName("M")
	plan, err := core.DispenseForMinOutputs(vn, cfg(), map[int]float64{m.ID(): 99})
	if err != nil {
		t.Fatal(err)
	}
	// B would need (46/45)×99 > 100 nl.
	if plan.Feasible() {
		t.Fatal("demanding 99 nl of M must overflow B")
	}
}

// Tiny required outputs violate the least count and are reported.
func TestDispenseForMinOutputsUnderflow(t *testing.T) {
	g := assays.GlucoseDAG()
	vn, err := core.ComputeVnorms(g)
	if err != nil {
		t.Fatal(err)
	}
	var sense *dag.Node
	for _, n := range g.Nodes() {
		if n.IsLeaf() {
			sense = n
			break
		}
	}
	plan, err := core.DispenseForMinOutputs(vn, cfg(), map[int]float64{sense.ID(): 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 nl output → the 1/9 glucose share of mix d is ~0.056 nl < least
	// count.
	if plan.Feasible() {
		t.Fatal("0.5 nl outputs must underflow the 1:8 dilution")
	}
	if math.IsNaN(plan.Scale) || plan.Scale <= 0 {
		t.Fatalf("scale = %v", plan.Scale)
	}
}
