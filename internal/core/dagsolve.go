package core

import (
	"fmt"
	"math"

	"aquavol/internal/budget"
	"aquavol/internal/dag"
)

// Vnorms is the result of DAGSolve's backward pass (§3.3, Fig. 4 lines
// 2-7): relative volumes for every node and edge, normalized so that every
// real output leaf has Vnorm 1. Vnorms are a pure function of the graph and
// can be computed at compile time even when absolute dispensing must wait
// for run-time measurements (§3.5).
type Vnorms struct {
	Graph *dag.Graph
	// Node holds each node's total-input-side relative volume; Edge holds
	// each edge's relative volume. Indexed by id.
	Node, Edge []float64
}

// MaxNode returns the node with the largest Vnorm (the dispensing
// bottleneck) and its value.
func (v *Vnorms) MaxNode() (*dag.Node, float64) {
	max := math.Inf(-1)
	var at *dag.Node
	for _, n := range v.Graph.Nodes() {
		if n == nil {
			continue
		}
		if x := v.Node[n.ID()]; x > max {
			max = x
			at = n
		}
	}
	return at, max
}

// ComputeVnorms runs the backward pass of DAGSolve. Leaves other than
// Excess sinks are seeded with Vnorm 1 (the paper's first artificial
// constraint: all outputs in equal proportion); every interior node's
// Vnorm is the sum of its outbound edge Vnorms (the second artificial
// constraint: flow conservation), adjusted for OutFrac shrinkage and for
// cascade excess (a node with Discard d produces 1/(1-d) times its
// forwarded volume; the surplus flows to its Excess sink, whose Vnorm is
// derived rather than seeded).
//
// The graph must validate and must not contain unknown-volume nodes with
// consumers (partition first, see Partition/NewStagedPlan).
func ComputeVnorms(g *dag.Graph) (*Vnorms, error) {
	return computeVnormsSeeded(g, func(*dag.Node) float64 { return 1 }, 0, nil)
}

// ComputeVnormsMargin is ComputeVnorms with Config.SafetyMargin applied:
// every non-leaf node plans (1+margin)× its consumers' draws, giving each
// level ε slack against metering jitter, dead volume, and evaporation.
// Margin 0 is exactly ComputeVnorms.
func ComputeVnormsMargin(g *dag.Graph, margin float64) (*Vnorms, error) {
	return computeVnormsBudgeted(g, margin, nil)
}

// computeVnormsBudgeted is the budget-aware backward pass behind
// ComputeVnormsMargin: bud (may be nil) is charged a work unit per node.
func computeVnormsBudgeted(g *dag.Graph, margin float64, bud *budget.Meter) (*Vnorms, error) {
	if margin < 0 || margin >= 1 || math.IsNaN(margin) {
		return nil, fmt.Errorf("core: safety margin must be in [0, 1), got %v", margin)
	}
	return computeVnormsSeeded(g, func(*dag.Node) float64 { return 1 }, margin, bud)
}

// Availability reports the absolute volume available at a constrained
// input, and whether it is known. Natural inputs never consult it.
type Availability func(ci *dag.Node) (float64, bool)

// StaticAvailability derives constrained-input availability for inputs
// split statically across partitions: share × MaxCapacity. It suffices for
// graphs whose constrained inputs all stem from natural inputs.
func StaticAvailability(cfg Config) Availability {
	return func(ci *dag.Node) (float64, bool) {
		if ci.SourceIsInput {
			return ci.Share * cfg.MaxCapacity, true
		}
		return 0, false
	}
}

// Dispense runs the forward pass of DAGSolve (Fig. 4 lines 8-11): absolute
// volumes are assigned by scaling Vnorms so that the largest node receives
// exactly MaxCapacity — or less, when a constrained input cannot supply its
// proportional share (§3.5: the scale is the minimum over constrained
// inputs of available/Vnorm).
//
// avail may be nil when the graph has no constrained inputs.
func Dispense(v *Vnorms, cfg Config, avail Availability) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := v.Graph
	_, maxV := v.MaxNode()
	if !(maxV > 0) {
		return nil, fmt.Errorf("core: degenerate graph: max Vnorm %v", maxV)
	}
	scale := cfg.MaxCapacity / maxV
	for _, n := range g.Nodes() {
		if n == nil || n.Kind != dag.ConstrainedInput {
			continue
		}
		if avail == nil {
			return nil, fmt.Errorf("core: constrained input %v but no availability provided", n)
		}
		a, ok := avail(n)
		if !ok {
			return nil, fmt.Errorf("core: availability for constrained input %v unknown", n)
		}
		if vn := v.Node[n.ID()]; vn > 0 && a/vn < scale {
			scale = a / vn
		}
	}
	p := &Plan{
		Graph:      g,
		Method:     "dagsolve",
		NodeVnorm:  v.Node,
		EdgeVnorm:  v.Edge,
		NodeVolume: make([]float64, len(v.Node)),
		EdgeVolume: make([]float64, len(v.Edge)),
		Production: make([]float64, len(v.Node)),
		Scale:      scale,
	}
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		if err := cfg.Budget.Charge(1); err != nil {
			return nil, err
		}
		id := n.ID()
		p.NodeVolume[id] = v.Node[id] * scale
		prod := v.Node[id]
		if !n.IsSource() {
			prod *= n.OutFrac
		}
		prod *= 1 - n.Discard
		p.Production[id] = prod * scale
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		if err := cfg.Budget.Charge(1); err != nil {
			return nil, err
		}
		p.EdgeVolume[e.ID()] = v.Edge[e.ID()] * scale
	}
	p.checkMinimums(cfg)
	return p, nil
}

// DAGSolve is the complete Fig. 4 algorithm: ComputeVnorms followed by
// Dispense, honoring cfg.SafetyMargin. For graphs without constrained
// inputs avail may be nil; for statically-split inputs use
// StaticAvailability(cfg).
//
// DAGSolve is certified reentrant: it writes no package-level state and
// performs no IO, so concurrent calls — even over a shared, unmutated
// graph — are race-free. A non-nil cfg.Budget is charged a work unit per
// node visit and per dispensed node/edge; a tripped budget aborts with
// its typed cause.
//
//fluidvet:parallelsafe
func DAGSolve(g *dag.Graph, cfg Config, avail Availability) (*Plan, error) {
	v, err := computeVnormsBudgeted(g, cfg.SafetyMargin, cfg.Budget)
	if err != nil {
		return nil, err
	}
	return Dispense(v, cfg, avail)
}
