package core_test

import (
	"errors"
	"testing"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// residualFixture: in1,in2 → mix M(1:3) → incubate H → sense end, with
// in1, in2, M executed. The residual is H and end fed by one constrained
// input on M's live vessel.
func residualFixture(t *testing.T) (*dag.Graph, *dag.Node, *dag.Residual) {
	t.Helper()
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", m)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, m.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	return g, m, r
}

// TestSolveResidualRescales: the live vessel holds less than the
// original plan wanted, so the re-solve scales the whole remainder down
// to fit — without ever exceeding the live volume.
func TestSolveResidualRescales(t *testing.T) {
	g, m, r := residualFixture(t)
	c := cfg()
	const liveVol = 37.5
	live := func(sourceID int, port string) (float64, bool) {
		if sourceID != m.ID() || port != dag.PortDefault {
			t.Errorf("unexpected live lookup (%d, %q)", sourceID, port)
			return 0, false
		}
		return liveVol, true
	}
	rp, err := core.SolveResidual(r, c, live)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Plan.Feasible() {
		t.Fatalf("residual plan infeasible: %v", rp.Plan.Underflows)
	}
	// The cut M→H edge must draw exactly what the vessel holds (the
	// residual's max-Vnorm path runs through it), and certainly no more.
	var cutEdge int
	for _, e := range g.Edges() {
		if e.From == m {
			cutEdge = e.ID()
		}
	}
	ev := rp.EdgeVolumes()
	v, ok := ev[cutEdge]
	if !ok {
		t.Fatalf("EdgeVolumes missing cut edge %d (have %v)", cutEdge, ev)
	}
	if v > liveVol+1e-9 {
		t.Errorf("replanned draw %v exceeds live volume %v", v, liveVol)
	}
	if !approx(v, liveVol) {
		t.Errorf("replanned draw = %v, want the full live %v (binding constraint)", v, liveVol)
	}
	// No pending natural inputs in this residual.
	if iv := rp.InputVolumes(); len(iv) != 0 {
		t.Errorf("InputVolumes = %v, want empty", iv)
	}
}

// TestSolveResidualPendingInput: a residual that still contains a
// natural input rescales it too, and InputVolumes reports it under the
// ORIGINAL node id.
func TestSolveResidualPendingInput(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	buf := g.AddInput("buf")
	h := g.AddUnary(dag.Incubate, "brew", in1)
	mix := g.AddMix("mix", dag.Part{Source: h, Ratio: 1}, dag.Part{Source: buf, Ratio: 1})
	g.AddUnary(dag.Sense, "end", mix)
	done := map[int]bool{in1.ID(): true, h.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	live := func(int, string) (float64, bool) { return 20, true }
	rp, err := core.SolveResidual(r, cfg(), live)
	if err != nil {
		t.Fatal(err)
	}
	iv := rp.InputVolumes()
	v, ok := iv[buf.ID()]
	if !ok {
		t.Fatalf("InputVolumes missing pending input buf (have %v)", iv)
	}
	// 1:1 mix against a 20 nl constrained half.
	if !approx(v, 20) {
		t.Errorf("buf load = %v, want 20 (matching the live half)", v)
	}
}

// TestSolveResidualInfeasible: a live volume so small that fitting the
// remainder drives draws below the least count cannot be replanned.
func TestSolveResidualInfeasible(t *testing.T) {
	_, _, r := residualFixture(t)
	c := cfg()
	live := func(int, string) (float64, bool) { return c.LeastCount / 50, true }
	_, err := core.SolveResidual(r, c, live)
	if !errors.Is(err, core.ErrResidualInfeasible) {
		t.Fatalf("err = %v, want ErrResidualInfeasible", err)
	}
}

// TestSolveResidualUnknownLive: a boundary whose live volume cannot be
// read (no vessel mapping) is infeasible, not a panic or a zero-volume
// plan.
func TestSolveResidualUnknownLive(t *testing.T) {
	_, _, r := residualFixture(t)
	live := func(int, string) (float64, bool) { return 0, false }
	_, err := core.SolveResidual(r, cfg(), live)
	if !errors.Is(err, core.ErrResidualInfeasible) {
		t.Fatalf("err = %v, want ErrResidualInfeasible", err)
	}
}
