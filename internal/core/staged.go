package core

import (
	"errors"
	"fmt"

	"aquavol/internal/budget"
	"aquavol/internal/dag"
)

// Measure supplies run-time volume measurements for unknown-volume nodes:
// given a node id in the ORIGINAL graph and a producer port, it reports
// the measured volume. The simulator (or real hardware) implements this.
type Measure func(origNodeID int, port string) (float64, bool)

// StagedPlan handles assays with statically-unknown volumes (§3.5). The
// DAG is partitioned at unknown-volume nodes; Vnorms for every partition
// are computed at compile time; absolute volume assignment for a partition
// is deferred until the volumes of its constrained inputs are known — at
// run time, immediately after the producing separation has been measured.
//
// Usage: create the plan at compile time, then call SolvePart(i, measure)
// for i = 0..NumParts()-1 in order as execution proceeds. Parts whose
// constrained inputs are all static solve with measure == nil.
type StagedPlan struct {
	cfg Config
	// Partition is the underlying graph partition.
	Partition *dag.PartitionResult
	// Vnorms holds the compile-time backward-pass results per part.
	Vnorms []*Vnorms
	// Plans holds the per-part volume plans, filled in by SolvePart.
	Plans []*Plan
	// UsedLP records, per part, whether the LP fallback produced the plan.
	UsedLP []bool

	// produced caches planned production volumes of cut known-volume
	// nodes, keyed by original node id, so later parts can compute
	// constrained-input availability.
	produced map[int]float64
}

// ErrPartOrder reports SolvePart called before its producing parts.
var ErrPartOrder = errors.New("core: part solved out of order")

// NewStagedPlan partitions g and computes every partition's Vnorms. The
// graph is not mutated.
func NewStagedPlan(g *dag.Graph, cfg Config) (*StagedPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	part, err := dag.Partition(g)
	if err != nil {
		return nil, err
	}
	sp := &StagedPlan{
		cfg:       cfg,
		Partition: part,
		Vnorms:    make([]*Vnorms, len(part.Parts)),
		Plans:     make([]*Plan, len(part.Parts)),
		UsedLP:    make([]bool, len(part.Parts)),
		produced:  map[int]float64{},
	}
	for i, pg := range part.Parts {
		vn, err := computeVnormsBudgeted(pg, cfg.SafetyMargin, cfg.Budget)
		if err != nil {
			if budget.IsStop(err) {
				return nil, err
			}
			return nil, fmt.Errorf("core: part %d: %w", i, err)
		}
		sp.Vnorms[i] = vn
	}
	return sp, nil
}

// NumParts reports the number of partitions.
func (sp *StagedPlan) NumParts() int { return len(sp.Partition.Parts) }

// Produced reports the planned production of a cut known-volume node
// (keyed by original node id) once its part has been solved. Runtime
// sources use it to defer dependent parts instead of solving out of
// order.
func (sp *StagedPlan) Produced(origNodeID int) (float64, bool) {
	v, ok := sp.produced[origNodeID]
	return v, ok
}

// Static reports whether part i can be solved at compile time (no
// run-time-measured constrained inputs).
func (sp *StagedPlan) Static(i int) bool {
	for _, b := range sp.Partition.Bindings {
		if b.Part == i && b.SourceUnknown {
			return false
		}
	}
	return true
}

// bindingFor finds the binding describing a constrained-input node of part
// i, by part-local node id.
func (sp *StagedPlan) bindingFor(part, nodeID int) (dag.Binding, bool) {
	for _, b := range sp.Partition.Bindings {
		if b.Part == part && b.NodeID == nodeID {
			return b, true
		}
	}
	return dag.Binding{}, false
}

// PartAvailability returns the Availability function SolvePart uses for
// part i: each constrained input gets share × (MaxCapacity | planned
// production | measured volume) depending on whether its source is a
// natural input, a cut known-volume node from an earlier part, or an
// unknown-volume node resolved through measure. It is exported so an
// independent checker (internal/certify) can re-derive the exact
// availability limits a part was solved under.
func (sp *StagedPlan) PartAvailability(i int, measure Measure) Availability {
	return func(ci *dag.Node) (float64, bool) {
		b, ok := sp.bindingFor(i, ci.ID())
		if !ok {
			return 0, false
		}
		switch {
		case b.SourcePart == -1: // natural input split statically
			return b.Share * sp.cfg.MaxCapacity, true
		case b.SourceUnknown:
			if measure == nil {
				return 0, false
			}
			v, ok := measure(b.SourceID, b.SourcePort)
			if !ok {
				return 0, false
			}
			return b.Share * v, true
		default: // cut known-volume node planned in an earlier part
			v, ok := sp.produced[b.SourceID]
			if !ok {
				return 0, false
			}
			return b.Share * v, true
		}
	}
}

// Config reports the configuration the staged plan was built with, so
// downstream consumers (certification, diagnostics) see the same limits
// the solver used.
func (sp *StagedPlan) Config() Config { return sp.cfg }

// SolvePart assigns absolute volumes for part i. Availability of each
// constrained input is share × (MaxCapacity | planned production |
// measured volume) depending on whether its source is a natural input, a
// cut known-volume node from an earlier part, or an unknown-volume node
// (in which case measure must report it).
//
// DAGSolve is attempted first; on underflow the LP formulation of the part
// is tried before giving up (mirroring the hierarchy; DAG transforms are
// not attempted inside partitions).
func (sp *StagedPlan) SolvePart(i int, measure Measure) (*Plan, error) {
	if i < 0 || i >= sp.NumParts() {
		return nil, fmt.Errorf("core: part %d out of range [0,%d)", i, sp.NumParts())
	}
	// Poll at the part boundary; Dispense/SolveLP below charge the meter.
	if err := sp.cfg.Budget.Err(); err != nil {
		return nil, err
	}
	avail := sp.PartAvailability(i, measure)
	// Pre-validate ordering: every non-static source must be resolvable.
	for _, b := range sp.Partition.Bindings {
		if b.Part != i || b.SourcePart == -1 || b.SourceUnknown {
			continue
		}
		if _, ok := sp.produced[b.SourceID]; !ok {
			return nil, fmt.Errorf("%w: part %d needs production of node %d (part %d)",
				ErrPartOrder, i, b.SourceID, b.SourcePart)
		}
	}

	plan, err := Dispense(sp.Vnorms[i], sp.cfg, avail)
	if err != nil {
		return nil, err
	}
	if !plan.Feasible() {
		lpPlan, lerr := SolveLP(sp.Partition.Parts[i], sp.cfg, FormulateOptions{}, avail)
		if lerr == nil && lpPlan.Feasible() {
			plan = lpPlan
			sp.UsedLP[i] = true
		} else if lerr != nil && !errors.Is(lerr, ErrLPInfeasible) {
			return nil, lerr
		}
	}
	sp.Plans[i] = plan

	// Record planned productions for downstream parts.
	pg := sp.Partition.Parts[i]
	for local, orig := range sp.Partition.OrigOf[i] {
		n := pg.Node(local)
		if n == nil || n.Unknown {
			continue // unknown productions come from measurements
		}
		sp.produced[orig] = plan.Production[local]
	}
	return plan, nil
}

// SolveStatic solves every part that needs no run-time measurement, in
// order, and returns the indices solved. Typically called at compile time;
// the remaining parts are solved during execution as measurements arrive.
func (sp *StagedPlan) SolveStatic() ([]int, error) {
	var done []int
	for i := 0; i < sp.NumParts(); i++ {
		if !sp.Static(i) {
			continue
		}
		// A static part may still depend on productions of earlier static
		// parts; those are filled in as we go. Parts are in dependency
		// order, so a single pass suffices.
		ready := true
		for _, b := range sp.Partition.Bindings {
			if b.Part == i && b.SourcePart >= 0 && !b.SourceUnknown {
				if _, ok := sp.produced[b.SourceID]; !ok {
					ready = false
				}
			}
		}
		if !ready {
			continue
		}
		if _, err := sp.SolvePart(i, nil); err != nil {
			return done, err
		}
		done = append(done, i)
	}
	return done, nil
}
