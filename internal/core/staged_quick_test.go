package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// randomUnknownDAG builds a random assay DAG containing unknown-volume
// separations, for staged-planning properties.
func randomUnknownDAG(r *rand.Rand) *dag.Graph {
	g := dag.New()
	var pool []*dag.Node
	for i := 0; i < 2+r.Intn(3); i++ {
		pool = append(pool, g.AddInput("in"))
	}
	for i := 0; i < 3+r.Intn(10); i++ {
		switch r.Intn(5) {
		case 0, 1:
			a := pool[r.Intn(len(pool))]
			b := pool[r.Intn(len(pool))]
			if a == b {
				continue
			}
			pool = append(pool, g.AddMix("m",
				dag.Part{Source: a, Ratio: float64(1 + r.Intn(9))},
				dag.Part{Source: b, Ratio: float64(1 + r.Intn(9))}))
		case 2:
			pool = append(pool, g.AddUnary(dag.Incubate, "h", pool[r.Intn(len(pool))]))
		case 3:
			s := g.AddUnary(dag.Separate, "sep", pool[r.Intn(len(pool))])
			s.Unknown = true
			// Consumers draw from the effluent.
			eff := g.AddNode(dag.Mix, "post")
			g.AddPortEdge(s, eff, 0.5, dag.PortEffluent)
			g.AddEdge(pool[r.Intn(len(pool))], eff, 0.5)
			pool = append(pool, eff)
		case 4:
			g.AddUnary(dag.Sense, "s", pool[r.Intn(len(pool))])
		}
	}
	// Terminal sink so every chain ends.
	g.AddUnary(dag.Sense, "end", pool[len(pool)-1])
	return g
}

// Property: staged planning on random unknown-volume DAGs solves every
// partition, in order, given measurements; part plans respect constrained
// input availability (scaled volumes never exceed share × measured).
func TestQuickStagedPlanning(t *testing.T) {
	cfg := core.DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomUnknownDAG(r)
		if g.Validate() != nil {
			return false
		}
		sp, err := core.NewStagedPlan(g, cfg)
		if err != nil {
			t.Logf("staged plan: %v", err)
			return false
		}
		// Measurements: each unknown yields 50% of its planned input.
		measure := func(orig int, port string) (float64, bool) {
			pi, ok := sp.Partition.PartOf[orig]
			if !ok || sp.Plans[pi] == nil {
				return 0, false
			}
			var local int
			for lid, oid := range sp.Partition.OrigOf[pi] {
				if oid == orig {
					local = lid
				}
			}
			in := sp.Plans[pi].NodeVolume[local]
			if port == dag.PortWaste {
				return 0.5 * in, true
			}
			return 0.5 * in, true
		}
		for i := 0; i < sp.NumParts(); i++ {
			plan, err := sp.SolvePart(i, measure)
			if err != nil {
				t.Logf("part %d: %v", i, err)
				return false
			}
			// Constrained inputs never draw more than their availability.
			pg := sp.Partition.Parts[i]
			for _, b := range sp.Partition.Bindings {
				if b.Part != i {
					continue
				}
				ci := pg.Node(b.NodeID)
				var limit float64
				switch {
				case b.SourcePart == -1:
					limit = b.Share * cfg.MaxCapacity
				case b.SourceUnknown:
					v, ok := measure(b.SourceID, b.SourcePort)
					if !ok {
						return false
					}
					limit = b.Share * v
				default:
					continue // checked transitively via produced volumes
				}
				if plan.NodeVolume[ci.ID()] > limit+1e-6 {
					t.Logf("part %d: CI %v draws %v > limit %v", i, ci, plan.NodeVolume[ci.ID()], limit)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
