package core

import (
	"errors"
	"fmt"
	"sort"

	"aquavol/internal/dag"
	"aquavol/internal/lp"
)

// TransformKind distinguishes the DAG rewrites of §3.4.
type TransformKind int

const (
	// TransformCascade splits an extreme-ratio mix into cascaded stages.
	TransformCascade TransformKind = iota
	// TransformReplicate replicates a heavily-used node.
	TransformReplicate
)

func (k TransformKind) String() string {
	switch k {
	case TransformCascade:
		return "cascade"
	case TransformReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("TransformKind(%d)", int(k))
	}
}

// Transform records one DAG rewrite. Node identifies the target by its id
// in the graph state produced by replaying all *earlier* transforms, which
// makes the sequence deterministically replayable on a fresh clone.
type Transform struct {
	Kind   TransformKind
	Node   int
	Levels int // cascade depth
	Copies int // replica count
}

func (t Transform) String() string {
	switch t.Kind {
	case TransformCascade:
		return fmt.Sprintf("cascade(node %d, %d levels)", t.Node, t.Levels)
	default:
		return fmt.Sprintf("replicate(node %d, %d copies)", t.Node, t.Copies)
	}
}

// ManageOptions tunes the hierarchy driver.
type ManageOptions struct {
	// SkipLP disables the LP fallback between DAGSolve and the DAG
	// transforms (useful in benchmarks isolating DAGSolve).
	SkipLP bool
	// Avail resolves constrained-input availability when g already
	// contains constrained inputs; nil selects StaticAvailability.
	Avail Availability
	// LP configures the fallback LP solver.
	LP lp.Options
}

// ManageResult is the outcome of Manage.
type ManageResult struct {
	// Plan is the feasible volume plan.
	Plan *Plan
	// Graph is the transformed DAG the plan covers (a clone; the input
	// graph is never mutated).
	Graph *dag.Graph
	// UsedLP reports whether the final plan came from the LP fallback
	// rather than DAGSolve.
	UsedLP bool
	// Transforms lists the DAG rewrites that were needed, in order.
	Transforms []Transform
	// Attempts is the number of solve rounds.
	Attempts int
	// Trace is a human-readable decision log.
	Trace []string
}

// ErrUnmanageable reports that no feasible volume assignment was found
// within the attempt budget; the caller must fall back on run-time
// regeneration or reject the assay (Fig. 6's terminal states).
var ErrUnmanageable = errors.New("core: no feasible volume assignment found")

// ErrResourceLimit reports that cascading/replication grew the DAG beyond
// the configured PLoC resources, failing compilation (§3.4.2).
var ErrResourceLimit = errors.New("core: transformed DAG exceeds PLoC resources")

// Manage runs the volume-management hierarchy of Fig. 6 on a
// statically-known assay DAG: DAGSolve first; the full LP on DAGSolve
// underflow; then, if both fail, cascading (when the underflow sits on an
// extreme-ratio mix) or static replication (numerous uses), re-entering
// the hierarchy after each rewrite.
//
// g is never mutated. Graphs containing unknown-volume nodes with uses
// must use NewStagedPlan instead.
func Manage(g *dag.Graph, cfg Config, opts ManageOptions) (*ManageResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	avail := opts.Avail
	if avail == nil {
		avail = StaticAvailability(cfg)
	}
	res := &ManageResult{}
	tracef := func(format string, args ...any) {
		res.Trace = append(res.Trace, fmt.Sprintf(format, args...))
	}

	for attempt := 0; attempt < cfg.maxAttempts(); attempt++ {
		// Poll at the attempt boundary: transform replay and diagnosis are
		// cheap, but a cancelled caller must not enter another round.
		if err := cfg.Budget.Err(); err != nil {
			return nil, err
		}
		res.Attempts = attempt + 1
		cur, err := replay(g, res.Transforms)
		if err != nil {
			return nil, err
		}
		res.Graph = cur
		if cfg.MaxFluidNodes > 0 && wetNodeCount(cur) > cfg.MaxFluidNodes {
			tracef("transformed DAG has %d wet nodes > limit %d", wetNodeCount(cur), cfg.MaxFluidNodes)
			return res, ErrResourceLimit
		}

		vn, err := computeVnormsBudgeted(cur, cfg.SafetyMargin, cfg.Budget)
		if err != nil {
			return nil, err
		}
		plan, err := Dispense(vn, cfg, avail)
		if err != nil {
			return nil, err
		}
		if plan.Feasible() {
			tracef("attempt %d: DAGSolve feasible", attempt+1)
			res.Plan = plan
			return res, nil
		}
		_, minVol := plan.MinDispense()
		tracef("attempt %d: DAGSolve underflow (min dispense %.4g nl)", attempt+1, minVol)

		if !opts.SkipLP {
			lpPlan, err := SolveLP(cur, cfg, FormulateOptions{}, avail)
			switch {
			case err == nil && lpPlan.Feasible():
				tracef("attempt %d: LP fallback feasible", attempt+1)
				res.Plan = lpPlan
				res.UsedLP = true
				return res, nil
			case err != nil && !errors.Is(err, ErrLPInfeasible):
				return nil, err
			default:
				tracef("attempt %d: LP infeasible too", attempt+1)
			}
		}

		t, why, ok := diagnose(plan, cur, cfg)
		if !ok {
			tracef("attempt %d: no applicable transform (%s)", attempt+1, why)
			return res, ErrUnmanageable
		}
		tracef("attempt %d: applying %s (%s)", attempt+1, t, why)
		res.Transforms = append(res.Transforms, t)
	}
	return res, ErrUnmanageable
}

// replay applies the transform sequence to a fresh clone of g.
func replay(g *dag.Graph, ts []Transform) (*dag.Graph, error) {
	cur := g.Clone()
	for _, t := range ts {
		n := cur.Node(t.Node)
		if n == nil {
			return nil, fmt.Errorf("core: transform %v targets missing node", t)
		}
		switch t.Kind {
		case TransformCascade:
			if err := cur.Cascade(n, t.Levels); err != nil {
				return nil, err
			}
		case TransformReplicate:
			vn, err := ComputeVnorms(cur)
			if err != nil {
				return nil, err
			}
			if _, err := cur.Replicate(n, t.Copies, balancedAssign(n, vn, t.Copies)); err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

// balancedAssign distributes a node's outbound uses across replicas so that
// per-replica Vnorm load is as even as possible: edges are taken in
// descending Vnorm order and placed on the least-loaded replica.
func balancedAssign(n *dag.Node, vn *Vnorms, copies int) func(*dag.Edge) int {
	type load struct {
		idx int
		sum float64
	}
	loads := make([]load, copies)
	for i := range loads {
		loads[i].idx = i
	}
	edges := append([]*dag.Edge(nil), n.Out()...)
	sort.Slice(edges, func(i, j int) bool {
		vi, vj := vn.Edge[edges[i].ID()], vn.Edge[edges[j].ID()]
		if vi != vj {
			return vi > vj
		}
		return edges[i].ID() < edges[j].ID()
	})
	assign := make(map[*dag.Edge]int, len(edges))
	for _, e := range edges {
		min := 0
		for i := 1; i < copies; i++ {
			if loads[i].sum < loads[min].sum {
				min = i
			}
		}
		assign[e] = loads[min].idx
		loads[min].sum += vn.Edge[e.ID()]
	}
	return func(e *dag.Edge) int { return assign[e] }
}

// diagnose picks the next transform from a failing DAGSolve plan, per the
// right-hand side of Fig. 6: an underflow at an extreme-ratio two-part mix
// is attributed to the ratio (cascade); anything else is attributed to
// numerous uses (replicate the dispensing bottleneck, i.e. the node with
// the largest Vnorm).
func diagnose(plan *Plan, g *dag.Graph, cfg Config) (Transform, string, bool) {
	edge, _ := plan.MinDispense()
	if edge != nil {
		n := edge.To
		skew := dag.ExtremeRatio(n)
		if n.Kind == dag.Mix && len(n.In()) == 2 && skew > cfg.cascadeTrigger() && !cascadeForbidden(n) {
			levels := dag.CascadeLevels(skew, cfg.cascadeTrigger())
			if levels >= 2 {
				return Transform{Kind: TransformCascade, Node: n.ID(), Levels: levels},
					fmt.Sprintf("mix %s skew %.3g exceeds trigger %.3g", n.Name, skew, cfg.cascadeTrigger()), true
			}
		}
	}
	// Replicate the bottleneck: largest-Vnorm node that can be replicated.
	type cand struct {
		n *dag.Node
		v float64
	}
	var cands []cand
	for _, n := range g.Nodes() {
		if n == nil || n.Unknown || n.Kind == dag.Excess || n.Kind == dag.ConstrainedInput {
			continue
		}
		cands = append(cands, cand{n, plan.NodeVnorm[n.ID()]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].n.ID() < cands[j].n.ID()
	})
	for _, c := range cands {
		if len(c.n.Out()) < 2 {
			continue // replication cannot split a single use
		}
		return Transform{Kind: TransformReplicate, Node: c.n.ID(), Copies: 2},
			fmt.Sprintf("node %s is the Vnorm bottleneck (%.4g)", c.n.Name, c.v), true
	}
	return Transform{}, "no cascade target and no replicable bottleneck", false
}

// cascadeForbidden reports whether the mix involves fluids for which
// excess production is disallowed.
func cascadeForbidden(n *dag.Node) bool {
	if n.NoExcess {
		return true
	}
	for _, e := range n.In() {
		if e.From.NoExcess {
			return true
		}
	}
	return false
}

// wetNodeCount counts nodes that occupy fluidic resources (everything but
// synthetic bookkeeping sinks).
func wetNodeCount(g *dag.Graph) int {
	c := 0
	for _, n := range g.Nodes() {
		if n != nil && n.Kind != dag.Excess {
			c++
		}
	}
	return c
}
