// Package core implements the paper's volume-management algorithms: the
// RVol/IVol linear-programming formulations (§3.2), the linear-time
// DAGSolve algorithm (§3.3), the cascading and static-replication
// extensions (§3.4), run-time handling of statically-unknown volumes
// (§3.5), rounding of rational volume assignments to integer multiples of
// the hardware least count, and the volume-management hierarchy of Fig. 6
// that ties them together.
package core

import (
	"fmt"
	"math"

	"aquavol/internal/budget"
	"aquavol/internal/dag"
)

// Config holds the hardware parameters volume management plans against.
// All volumes are in nanoliters.
type Config struct {
	// MaxCapacity is the maximum volume a reservoir or functional unit can
	// hold (the paper's "default maximum", 100 nl).
	MaxCapacity float64
	// LeastCount is the minimum transport resolution: every dispensed
	// volume must be an integer multiple of it and no dispense may be
	// smaller (the paper assumes 100 pl = 0.1 nl, per Unger et al.).
	LeastCount float64
	// MinNodeVolume optionally raises the minimum *total input* volume for
	// specific node kinds (the paper notes separators may need more fluid
	// than the least count to operate).
	MinNodeVolume map[dag.Kind]float64
	// OutputSkew bounds how far LP may skew one output against another:
	// every output must lie within [1-OutputSkew, 1+OutputSkew] times the
	// reference output (§3.2's optional relative output-to-output
	// constraints). Zero disables the constraints.
	OutputSkew float64
	// CascadeTrigger is the mix skew above which a persistent underflow is
	// attributed to an extreme mix ratio (fixed by cascading) rather than
	// to numerous uses (fixed by replication). Zero selects
	// sqrt(MaxCapacity/LeastCount).
	CascadeTrigger float64
	// MaxAttempts bounds the transform-and-resolve iterations of the
	// Fig. 6 hierarchy. Zero selects 16.
	MaxAttempts int
	// MaxFluidNodes, when nonzero, bounds the number of wet nodes the
	// transformed DAG may contain; cascading/replication beyond it fails
	// compilation (the paper: "the replicated code may exceed the PLoC's
	// resources. In such cases, compilation fails.").
	MaxFluidNodes int
	// SafetyMargin is the over-provisioning fraction ε for imperfect
	// fluidics: every non-leaf node plans to produce (1+ε)× what its
	// consumers draw, so runs tolerate metering jitter, dead volume, and
	// evaporation without regeneration. The margin scales all of a node's
	// in-edges uniformly (mix ratios are preserved) and the dispensing
	// bottleneck still saturates at MaxCapacity (no overflow); the cost is
	// proportionally smaller absolute volumes and ε-waste per level. Must
	// be in [0, 1); 0 (the default) reproduces the paper's exact-flow
	// plans.
	SafetyMargin float64
	// Budget, when non-nil, bounds and cancels planning cooperatively:
	// DAGSolve charges a work unit per node visit and per dispensed
	// edge, the LP path charges one per simplex pivot, and every entry
	// point polls it at its boundaries. A tripped budget surfaces as a
	// typed error (budget.ErrCancelled / ErrDeadline / ErrExhausted).
	// The meter is config, not plan state: it is never recorded in
	// plans, journals, or snapshots.
	Budget *budget.Meter
}

// DefaultConfig returns the paper's evaluation parameters: 100 nl maximum
// capacity and 0.1 nl least count.
func DefaultConfig() Config {
	return Config{
		MaxCapacity: 100,
		LeastCount:  0.1,
		OutputSkew:  0.10,
	}
}

// MaxSkew is the largest mix ratio the hardware can execute directly:
// MaxCapacity / LeastCount (§3.4.1).
func (c Config) MaxSkew() float64 { return c.MaxCapacity / c.LeastCount }

func (c Config) cascadeTrigger() float64 {
	if c.CascadeTrigger > 0 {
		return c.CascadeTrigger
	}
	return math.Sqrt(c.MaxSkew())
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 16
}

// Validate checks that the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case !(c.MaxCapacity > 0) || math.IsInf(c.MaxCapacity, 0):
		return fmt.Errorf("core: MaxCapacity must be positive and finite, got %v", c.MaxCapacity)
	case !(c.LeastCount > 0) || math.IsInf(c.LeastCount, 0):
		return fmt.Errorf("core: LeastCount must be positive and finite, got %v", c.LeastCount)
	case c.LeastCount > c.MaxCapacity:
		return fmt.Errorf("core: LeastCount %v exceeds MaxCapacity %v", c.LeastCount, c.MaxCapacity)
	case c.OutputSkew < 0 || c.OutputSkew >= 1:
		return fmt.Errorf("core: OutputSkew must be in [0, 1), got %v", c.OutputSkew)
	case c.SafetyMargin < 0 || c.SafetyMargin >= 1 || math.IsNaN(c.SafetyMargin):
		return fmt.Errorf("core: SafetyMargin must be in [0, 1), got %v", c.SafetyMargin)
	}
	return nil
}

// MinFor reports the minimum total-input volume required at node n: the
// configured per-kind FFU minimum when it exceeds the least count, else
// the least count itself. Exported so the independent certificate
// checker (internal/certify) enforces exactly the thresholds the
// solvers planned against.
func (c Config) MinFor(n *dag.Node) float64 { return c.minForNode(n) }

// minForNode is the minimum total-input volume required at node n.
func (c Config) minForNode(n *dag.Node) float64 {
	if m, ok := c.MinNodeVolume[n.Kind]; ok && m > c.LeastCount {
		return m
	}
	return c.LeastCount
}
