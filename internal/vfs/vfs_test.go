package vfs_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"aquavol/internal/faults"
	"aquavol/internal/vfs"
)

// The OS implementation is a faithful pass-through: create, write, sync,
// reopen, truncate, rename, syncdir all reach the real filesystem.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS{}
	path := filepath.Join(dir, "a.dat")

	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	renamed := filepath.Join(dir, "b.dat")
	if err := fsys.Rename(path, renamed); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	st, err := fsys.Stat(renamed)
	if err != nil || st.Size() != 11 {
		t.Fatalf("stat after rename: %v size %d", err, st.Size())
	}

	rw, err := fsys.OpenReadWrite(renamed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(rw)
	if err != nil || string(b) != "hello world" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if err := rw.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Seek(5, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(renamed); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

// A strike fires at exactly its site and nowhere else, and the error
// chain exposes the modeled errno.
func TestStrikeSiteExact(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpWrite, N: 2}}, nil)
	f, err := fsys.Create(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("write 2 error %v, want ErrIO", err)
	}
	// Non-sticky: the next site succeeds again.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fsys.Count(vfs.OpWrite); got != 4 {
		t.Fatalf("write count %d, want 4", got)
	}
}

// A sticky ENOSPC models a disk that fills and stays full.
func TestStickyENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpWrite, N: 1, Err: vfs.ErrNoSpace, Sticky: true}}, nil)
	f, err := fsys.Create(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, vfs.ErrNoSpace) {
			t.Fatalf("sticky write %d error %v, want ErrNoSpace", i, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// A short write delivers a prefix of the bytes before failing — the
// canonical torn-frame producer.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpWrite, N: 0, Short: true}}, nil)
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("short write error %v, want ErrNoSpace", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "01234" {
		t.Fatalf("on disk %q, %v", b, err)
	}
}

// The lying fsync reports failure AND drops everything buffered since
// the last successful sync, exactly as a crash after a kernel page-cache
// drop would.
func TestLyingSyncDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpSync, N: 1, Lying: true}}, nil)
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // sync #0 succeeds: "durable" is safe
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+lost")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, vfs.ErrIO) { // sync #1 lies
		t.Fatalf("lying sync error %v, want ErrIO", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "durable" {
		t.Fatalf("after lying fsync the file holds %q, want only the synced prefix %q (%v)", b, "durable", err)
	}
}

// Bytes that were on disk when the file was opened are already durable:
// a lying fsync on a reopened file cannot take them back.
func TestLyingSyncSparesPreexistingBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	if err := os.WriteFile(path, []byte("olddata"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpSync, N: 0, Lying: true}}, nil)
	f, err := fsys.OpenReadWrite(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(7, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+new")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("lying sync error %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "olddata" {
		t.Fatalf("pre-existing bytes damaged: %q", b)
	}
}

// Rate-based faults are reproducible: the same (profile, seed, op
// sequence) realizes the same faults, and a fresh injector replays them.
func TestRateFaultsDeterministic(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		fsys := vfs.NewFaulty(vfs.OS{}, nil, faults.NewDisk(faults.DiskProfile{WriteErr: 0.3, SyncErr: 0.2}, 7))
		f, err := fsys.Create(filepath.Join(dir, "j"))
		if err != nil {
			t.Fatal(err)
		}
		var fates []bool
		for i := 0; i < 64; i++ {
			_, werr := f.Write([]byte("x"))
			fates = append(fates, werr != nil)
			fates = append(fates, f.Sync() != nil)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return fates
	}
	a, b := run(), run()
	hit := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs between identical runs", i)
		}
		hit = hit || a[i]
	}
	if !hit {
		t.Fatal("no fault realized at 30%/20% over 64 ops: injector inert")
	}
}

// ParseStrikes round-trips the spec grammar and rejects malformed terms.
func TestParseStrikes(t *testing.T) {
	got, err := vfs.ParseStrikes("sync@3:lying, write@5:enospc:sticky,rename@0")
	if err != nil {
		t.Fatal(err)
	}
	want := []vfs.Strike{
		{Op: vfs.OpSync, N: 3, Lying: true},
		{Op: vfs.OpWrite, N: 5, Err: vfs.ErrNoSpace, Sticky: true},
		{Op: vfs.OpRename, N: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d strikes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("strike %d = %s, want %s", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"write", "write@x", "frob@1", "write@1:frob", "close@0:short", "write@0:lying"} {
		if _, err := vfs.ParseStrikes(bad); err == nil {
			t.Errorf("ParseStrikes(%q) accepted", bad)
		}
	}
}
