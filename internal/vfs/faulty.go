package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strconv"
	"strings"

	"aquavol/internal/faults"
)

// Modeled storage errnos. Sentinels rather than raw syscall errors so
// tests and chaos harnesses match them with errors.Is portably.
var (
	// ErrIO is an injected I/O failure (EIO): the device refused the
	// operation and nothing can be assumed about the affected bytes.
	ErrIO = errors.New("vfs: injected I/O error (EIO)")
	// ErrNoSpace is an injected device-full failure (ENOSPC).
	ErrNoSpace = errors.New("vfs: injected device-full error (ENOSPC)")
)

// Op classifies the operations Faulty can strike.
type Op string

const (
	OpCreate   Op = "create"
	OpOpen     Op = "open" // Open and OpenReadWrite
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
)

// Ops lists every op class in a fixed order; chaos sweeps iterate it so
// their site enumeration is deterministic.
func Ops() []Op {
	return []Op{OpCreate, OpOpen, OpWrite, OpSync, OpClose, OpRename, OpRemove, OpTruncate, OpSyncDir}
}

// Strike is one deterministically scheduled fault: the N-th operation of
// class Op (0-based, counted across the whole FS) fails. The zero Err is
// ErrIO (ErrNoSpace for short writes).
type Strike struct {
	Op Op
	N  uint64
	// Err is the error returned; nil selects ErrIO, or ErrNoSpace when
	// Short is set.
	Err error
	// Short makes a struck write deliver half its bytes before failing —
	// the torn-frame producer.
	Short bool
	// Lying makes a struck sync also drop the bytes buffered since the
	// last successful sync, mirroring kernels that discard dirty pages
	// after a failed fsync ("fsyncgate"): the data is gone exactly as
	// after a crash, and a writer that retries the fsync and carries on
	// silently loses records.
	Lying bool
	// Sticky makes the fault persist: every operation of this class from
	// the N-th on fails (a disk that stays full).
	Sticky bool
}

// errOf resolves the strike's error.
func (s *Strike) errOf() error {
	if s.Err != nil {
		return s.Err
	}
	if s.Short {
		return ErrNoSpace
	}
	return ErrIO
}

// String renders the strike in the form ParseStrikes accepts.
func (s Strike) String() string {
	out := fmt.Sprintf("%s@%d", s.Op, s.N)
	if errors.Is(s.errOf(), ErrNoSpace) && !s.Short {
		out += ":enospc"
	}
	if s.Short {
		out += ":short"
	}
	if s.Lying {
		out += ":lying"
	}
	if s.Sticky {
		out += ":sticky"
	}
	return out
}

// ParseStrikes parses a comma-separated strike list. Each strike is
// op@N with optional :modifiers — eio (default), enospc, short, lying,
// sticky — e.g. "sync@3:lying" or "write@5:enospc:sticky,rename@0".
func ParseStrikes(s string) ([]Strike, error) {
	var out []Strike
	valid := map[Op]bool{}
	for _, op := range Ops() {
		valid[op] = true
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		parts := strings.Split(term, ":")
		opAt, mods := parts[0], parts[1:]
		opStr, nStr, ok := strings.Cut(opAt, "@")
		if !ok {
			return nil, fmt.Errorf("vfs: bad strike %q (want op@N[:modifier...])", term)
		}
		st := Strike{Op: Op(strings.TrimSpace(opStr))}
		if !valid[st.Op] {
			return nil, fmt.Errorf("vfs: unknown op %q in strike %q", opStr, term)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(nStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vfs: bad site ordinal in strike %q: %w", term, err)
		}
		st.N = n
		for _, mod := range mods {
			switch strings.TrimSpace(mod) {
			case "eio":
				st.Err = ErrIO
			case "enospc":
				st.Err = ErrNoSpace
			case "short":
				st.Short = true
			case "lying":
				st.Lying = true
			case "sticky":
				st.Sticky = true
			default:
				return nil, fmt.Errorf("vfs: unknown modifier %q in strike %q (have eio, enospc, short, lying, sticky)", mod, term)
			}
		}
		if st.Short && st.Op != OpWrite {
			return nil, fmt.Errorf("vfs: :short applies only to write strikes (%q)", term)
		}
		if st.Lying && st.Op != OpSync {
			return nil, fmt.Errorf("vfs: :lying applies only to sync strikes (%q)", term)
		}
		out = append(out, st)
	}
	return out, nil
}

// Faulty wraps an FS with reproducible fault injection: deterministic
// per-site strikes (chaos matrices sweep one strike over every site) and
// rate-based faults drawn from a seeded faults.DiskInjector stream. With
// neither configured it is a pure pass-through that still counts
// operations — the site enumerator for the sweeps.
//
// It is not safe for concurrent use; one run owns its filesystem, as it
// owns its journal.
type Faulty struct {
	inner   FS
	strikes []Strike
	disk    *faults.DiskInjector
	counts  map[Op]uint64
}

// NewFaulty wraps inner. strikes and disk may be nil/empty.
func NewFaulty(inner FS, strikes []Strike, disk *faults.DiskInjector) *Faulty {
	return &Faulty{inner: inner, strikes: append([]Strike(nil), strikes...), disk: disk, counts: map[Op]uint64{}}
}

// Count returns how many operations of class op have been performed.
func (f *Faulty) Count(op Op) uint64 { return f.counts[op] }

// Counts returns a copy of the per-class operation counters.
func (f *Faulty) Counts() map[Op]uint64 {
	out := make(map[Op]uint64, len(f.counts))
	for op, n := range f.counts {
		out[op] = n
	}
	return out
}

// strike advances op's counter and returns the strike scheduled for this
// site, if any.
func (f *Faulty) strike(op Op) (*Strike, uint64) {
	n := f.counts[op]
	f.counts[op] = n + 1
	for i := range f.strikes {
		s := &f.strikes[i]
		if s.Op == op && (n == s.N || (s.Sticky && n > s.N)) {
			return s, n
		}
	}
	return nil, n
}

// injected wraps a strike's error with the site it hit.
func injected(op Op, n uint64, s *Strike) error {
	return fmt.Errorf("vfs: injected fault at %s #%d: %w", op, n, s.errOf())
}

// Create implements FS.
func (f *Faulty) Create(name string) (File, error) {
	if s, n := f.strike(OpCreate); s != nil {
		return nil, injected(OpCreate, n, s)
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fsys: f, inner: inner}, nil
}

// OpenReadWrite implements FS.
func (f *Faulty) OpenReadWrite(name string) (File, error) { return f.open(name, f.inner.OpenReadWrite) }

// Open implements FS.
func (f *Faulty) Open(name string) (File, error) { return f.open(name, f.inner.Open) }

func (f *Faulty) open(name string, via func(string) (File, error)) (File, error) {
	if s, n := f.strike(OpOpen); s != nil {
		return nil, injected(OpOpen, n, s)
	}
	inner, err := via(name)
	if err != nil {
		return nil, err
	}
	// Everything already on disk survived whatever came before: it is
	// durable, so a later lying fsync cannot take it back.
	durable := int64(0)
	if st, serr := f.inner.Stat(name); serr == nil {
		durable = st.Size()
	}
	return &faultyFile{fsys: f, inner: inner, durable: durable}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldname, newname string) error {
	if s, n := f.strike(OpRename); s != nil {
		return injected(OpRename, n, s)
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if s, n := f.strike(OpRemove); s != nil {
		return injected(OpRemove, n, s)
	}
	return f.inner.Remove(name)
}

// Stat implements FS. Metadata reads are not a fault site: no real
// journal failure mode hinges on stat.
func (f *Faulty) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	if s, n := f.strike(OpSyncDir); s != nil {
		return injected(OpSyncDir, n, s)
	}
	return f.inner.SyncDir(dir)
}

// faultyFile wraps an open file, tracking enough position state to model
// the lying fsync: pos is the write cursor, durable the length known to
// have reached stable storage (everything up to the last successful sync,
// or the size at open). The model is append-oriented — exactly the
// journal's access pattern.
type faultyFile struct {
	fsys    *Faulty
	inner   File
	pos     int64
	durable int64
}

func (f *faultyFile) Read(p []byte) (int, error) {
	n, err := f.inner.Read(p)
	f.pos += int64(n)
	return n, err
}

func (f *faultyFile) Write(p []byte) (int, error) {
	if s, n := f.fsys.strike(OpWrite); s != nil {
		if s.Short && len(p) > 1 {
			k := len(p) / 2
			wn, werr := f.inner.Write(p[:k])
			f.pos += int64(wn)
			if werr != nil {
				return wn, werr
			}
			return wn, injected(OpWrite, n, s)
		}
		return 0, injected(OpWrite, n, s)
	}
	if d := f.fsys.disk; d.Enabled() {
		fail, short := d.WriteFault()
		if fail {
			return 0, fmt.Errorf("vfs: random write fault: %w", ErrIO)
		}
		if short && len(p) > 1 {
			k := len(p) / 2
			wn, werr := f.inner.Write(p[:k])
			f.pos += int64(wn)
			if werr != nil {
				return wn, werr
			}
			return wn, fmt.Errorf("vfs: random short write (%d of %d bytes): %w", wn, len(p), ErrNoSpace)
		}
	}
	n, err := f.inner.Write(p)
	f.pos += int64(n)
	return n, err
}

func (f *faultyFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.inner.Seek(offset, whence)
	if err == nil {
		f.pos = pos
	}
	return pos, err
}

func (f *faultyFile) Truncate(size int64) error {
	if s, n := f.fsys.strike(OpTruncate); s != nil {
		return injected(OpTruncate, n, s)
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	if f.durable > size {
		f.durable = size
	}
	return nil
}

func (f *faultyFile) Sync() error {
	if s, n := f.fsys.strike(OpSync); s != nil {
		if s.Lying {
			f.dropUnsynced()
		}
		return injected(OpSync, n, s)
	}
	if d := f.fsys.disk; d.Enabled() {
		fail, lying := d.SyncFault()
		if lying {
			f.dropUnsynced()
			return fmt.Errorf("vfs: random lying fsync (unsynced bytes dropped): %w", ErrIO)
		}
		if fail {
			return fmt.Errorf("vfs: random fsync failure: %w", ErrIO)
		}
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.durable = f.pos
	return nil
}

// dropUnsynced models the kernel discarding dirty pages after a failed
// fsync: everything written since the last successful sync vanishes, as
// it would across a crash. Best-effort — this IS the crash model, so a
// failure to truncate just leaves more bytes behind, which a real crash
// may do too.
func (f *faultyFile) dropUnsynced() {
	if f.pos > f.durable {
		if err := f.inner.Truncate(f.durable); err == nil {
			f.pos = f.durable
		}
	}
}

func (f *faultyFile) Close() error {
	if s, n := f.fsys.strike(OpClose); s != nil {
		err := injected(OpClose, n, s)
		if cerr := f.inner.Close(); cerr != nil {
			err = fmt.Errorf("%w (and the real close failed: %w)", err, cerr)
		}
		return err
	}
	return f.inner.Close()
}

func (f *faultyFile) Name() string { return f.inner.Name() }

var _ FS = (*Faulty)(nil)
