// Package vfs is the filesystem seam under the durability layer: the
// journal and snapshot paths perform every storage operation through the
// FS/File interfaces instead of calling package os directly, so storage
// faults — EIO, ENOSPC, short writes, a lying fsync — can be injected
// deterministically (Faulty) and the failure behavior of the write-ahead
// log can be exercised and gated in CI rather than assumed away.
//
// The interface is deliberately small: exactly the operations the
// durability contract depends on. Create/Rename/SyncDir exist because
// atomic-and-durable file creation is temp file + rename + parent
// directory fsync; OpenReadWrite and Truncate because crash recovery
// salvages a journal's good prefix in place; Sync because a write-ahead
// log that lingers in page cache does not survive the crashes it exists
// for.
//
// OS is the pass-through production implementation. Faulty (faulty.go)
// wraps any FS with seeded, reproducible fault injection.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is one open file on an FS: the journal's view of its backing
// store. Every mutating result must be checked by callers — the fluidvet
// syncerr analyzer enforces this for Sync, Close, and FS.SyncDir on
// journal/snapshot write paths.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Truncate cuts the file to size bytes (crash recovery drops a
	// journal's torn tail this way).
	Truncate(size int64) error
	// Sync flushes the file's written bytes to stable storage. A Sync
	// error means the bytes since the last successful Sync may or may not
	// be durable — and, on a fault model mirroring real page-cache
	// semantics, may already be gone. Writers must treat the first Sync
	// failure as fatal for the file (fail-stop), never retry-and-carry-on.
	Sync() error
	// Close releases the file. The result matters: a failed Close can
	// swallow a final flush.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS abstracts the filesystem operations the durability layer performs.
type FS interface {
	// Create creates (or truncates) the named file for read/write.
	Create(name string) (File, error)
	// OpenReadWrite opens an existing file for read/write (no create).
	OpenReadWrite(name string) (File, error)
	// Open opens the named file read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir flushes a directory's entries to stable storage: after a
	// Create or Rename inside dir, the new name is durable only once the
	// directory itself has been synced.
	SyncDir(dir string) error
}

// OS is the production FS: a pass-through to package os.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenReadWrite implements FS.
func (OS) OpenReadWrite(name string) (File, error) { return os.OpenFile(name, os.O_RDWR, 0) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS: fsync the directory so renames and creates
// within it survive a crash.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ensure *os.File satisfies File (compile-time only).
var _ File = (*os.File)(nil)
var _ FS = OS{}
