package ilp

import (
	"errors"
	"testing"
	"time"

	"aquavol/internal/budget"
	"aquavol/internal/lp"
)

// knapsack builds a small binary knapsack whose branch-and-bound tree
// needs more than one node, so truncation points are reachable.
func knapsack(t *testing.T) *lp.Problem {
	t.Helper()
	p := lp.NewProblem(lp.Maximize)
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	terms := make([]lp.Term, 4)
	for i := range vals {
		v := p.AddVariable("")
		p.SetBounds(v, 0, 1)
		p.SetObjective(v, vals[i])
		terms[i] = lp.Term{Var: v, Coef: wts[i]}
	}
	p.AddConstraint("cap", terms, lp.LE, 14)
	return p
}

// fullTreeNodes runs the search to completion and returns its size.
func fullTreeNodes(t *testing.T, p *lp.Problem) int {
	t.Helper()
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("unbounded solve: %v", r.Status)
	}
	return r.Nodes
}

// MaxNodes truncation is exact and reported: Status NodeLimit, Stop
// wrapping budget.ErrExhausted, and res.Nodes == MaxNodes — the node
// that would exceed the budget is never explored (the historical
// off-by-one boundary).
func TestMaxNodesTruncationBoundary(t *testing.T) {
	p := knapsack(t)
	full := fullTreeNodes(t, p)
	if full < 3 {
		t.Fatalf("tree too small (%d nodes) to exercise truncation", full)
	}
	for _, maxNodes := range []int{1, 2, full - 1} {
		r, err := Solve(p, Options{MaxNodes: maxNodes})
		if err != nil {
			t.Fatalf("MaxNodes=%d: %v", maxNodes, err)
		}
		if r.Status != NodeLimit {
			t.Fatalf("MaxNodes=%d: status %v, want node-limit", maxNodes, r.Status)
		}
		if r.Nodes != maxNodes {
			t.Errorf("MaxNodes=%d: explored %d nodes, want exactly %d", maxNodes, r.Nodes, maxNodes)
		}
		if !errors.Is(r.Stop, budget.ErrExhausted) {
			t.Errorf("MaxNodes=%d: Stop = %v, want budget.ErrExhausted", maxNodes, r.Stop)
		}
	}
	// At the full tree size the search completes: no truncation report.
	r, err := Solve(p, Options{MaxNodes: full})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Stop != nil {
		t.Fatalf("MaxNodes=%d (full tree): status %v stop %v, want optimal/nil", full, r.Status, r.Stop)
	}
}

// An expired MaxTime deadline truncates before the first node with the
// deadline cause; the pre-expired deadline keeps the test deterministic.
func TestMaxTimeTruncation(t *testing.T) {
	p := knapsack(t)
	r, err := Solve(p, Options{MaxTime: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != NodeLimit {
		t.Fatalf("status %v, want node-limit", r.Status)
	}
	if !errors.Is(r.Stop, budget.ErrDeadline) {
		t.Fatalf("Stop = %v, want budget.ErrDeadline", r.Stop)
	}
	if r.Nodes != 0 {
		t.Fatalf("explored %d nodes past an expired deadline, want 0", r.Nodes)
	}
	if r.HasIncumbent {
		t.Fatal("no node was explored, so no incumbent can exist")
	}
}

// An exhausted caller budget truncates with the typed cause and keeps
// the incumbent found so far — partial-result reporting, not silence.
func TestCallerBudgetExhaustionTruncates(t *testing.T) {
	p := knapsack(t)
	// Generous enough to find an incumbent (depth-first dives to a leaf
	// fast), tight enough to stop before the tree is exhausted. The
	// budget is charged per node AND per simplex pivot.
	r, err := Solve(p, Options{Budget: budget.New(40)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != NodeLimit {
		t.Fatalf("status %v, want node-limit", r.Status)
	}
	if !errors.Is(r.Stop, budget.ErrExhausted) {
		t.Fatalf("Stop = %v, want budget.ErrExhausted", r.Stop)
	}
	if !r.HasIncumbent {
		t.Fatal("40 work units reach several leaves; an incumbent must survive truncation")
	}
}

// Caller cancellation is not truncation: Solve aborts with a typed
// error and no Result.
func TestCallerCancellationAborts(t *testing.T) {
	p := knapsack(t)
	m := budget.New(0)
	m.Cancel()
	r, err := Solve(p, Options{Budget: m})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want budget.ErrCancelled", err)
	}
	if r != nil {
		t.Fatalf("cancelled solve returned a result: %+v", r)
	}
}

// A deterministic mid-search cancel (CancelAfter) lands within one
// charge of the requested trip point.
func TestCancelAfterMidSearch(t *testing.T) {
	p := knapsack(t)
	m := budget.New(0).CancelAfter(10)
	_, err := Solve(p, Options{Budget: m})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want budget.ErrCancelled", err)
	}
	if m.Used() != 10 {
		t.Fatalf("cancel landed at %d work units, want exactly 10", m.Used())
	}
}

// Completing under budget leaves Stop nil and the meter partially spent.
func TestBudgetCompletesUnderLimit(t *testing.T) {
	p := knapsack(t)
	m := budget.New(1 << 20)
	r, err := Solve(p, Options{Budget: m})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Stop != nil {
		t.Fatalf("status %v stop %v, want optimal/nil", r.Status, r.Stop)
	}
	if m.Used() == 0 {
		t.Fatal("solve must charge the caller budget")
	}
}
