// Package ilp implements integer linear programming by branch and bound
// over the internal/lp simplex solver.
//
// The paper casts Integer Volume Management (IVol) as an ILP and observes
// (§4.3) that an off-the-shelf ILP solver matches LP on the small glucose
// assay but "ran for hours without generating a solution" on the enzyme
// assay. This package substitutes for the paper's LP_Solve 5.5: a classic
// depth-first branch and bound with most-fractional branching. The paper's
// blow-up is reproduced as NodeLimit exhaustion under a configurable budget.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"aquavol/internal/budget"
	"aquavol/internal/lp"
)

// Status is the outcome of a branch-and-bound run.
type Status int

const (
	// Optimal means the best integer-feasible solution found is provably
	// optimal (the tree was exhausted).
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// NodeLimit means the node budget was exhausted. Result.X holds the
	// incumbent if HasIncumbent is true.
	NodeLimit
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes the search. The zero value selects defaults.
type Options struct {
	// LP configures the relaxation solver at every node.
	LP lp.Options
	// MaxNodes bounds the number of branch-and-bound nodes explored.
	// 0 selects 100000.
	MaxNodes int
	// MaxTime bounds the wall-clock search time (each node costs one LP
	// solve, which can be expensive on large formulations). 0 means no
	// time bound. MaxNodes and MaxTime are implemented as an internal
	// budget.Meter charged one unit per node; hitting either truncates
	// the search (Status NodeLimit) and records the typed cause in
	// Result.Stop.
	MaxTime time.Duration
	// Budget, when non-nil, is the caller's shared budget: charged one
	// work unit per node and routed into every node's LP solve (unless
	// LP.Budget is already set). Exhaustion or deadline on this meter
	// truncates the search like MaxNodes/MaxTime; caller cancellation
	// (budget.ErrCancelled) aborts Solve with that error.
	Budget *budget.Meter
	// IntTol is how close to an integer a value must be to count as
	// integral. 0 selects 1e-6.
	IntTol float64
	// Integers lists the variables that must take integer values. Empty
	// means every variable is integral.
	Integers []lp.VarID
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// HasIncumbent reports whether X/Objective hold a feasible integer
	// point (always true for Optimal, possibly true for NodeLimit).
	HasIncumbent bool
	Objective    float64
	X            []float64
	// Nodes is the number of branch-and-bound nodes explored. When the
	// node budget truncates the search, Nodes == MaxNodes exactly: the
	// node that would have exceeded the budget is never explored.
	Nodes int
	// Stop records why a NodeLimit truncation happened, as a typed
	// budget cause: budget.ErrExhausted for MaxNodes (or an exhausted
	// Options.Budget), budget.ErrDeadline for MaxTime (or a Budget
	// deadline). Nil for every other status, and nil when NodeLimit
	// arose from an inner LP iteration limit. Truncation is reported,
	// never silent: callers inspect Stop (or Status) before trusting
	// Objective/X as anything more than an incumbent.
	Stop error
}

// Solve runs branch and bound on p. The problem's variable bounds are
// temporarily tightened during the search and restored before returning, so
// p may be reused afterwards.
//
// Truncation by MaxNodes, MaxTime, or an exhausted Options.Budget returns a
// partial Result (Status NodeLimit, typed cause in Result.Stop, incumbent if
// one was found). Caller cancellation through Options.Budget returns a nil
// Result and an error wrapping budget.ErrCancelled.
//
// Solve is certified parallel-safe over distinct Problems; the bound
// tightening mutates p, so concurrent solves of one Problem race on the
// receiver as with any mutable value.
//
//fluidvet:parallelsafe
func Solve(p *lp.Problem, opts Options) (*Result, error) {
	opt := opts.withDefaults()
	n := p.NumVariables()

	isInt := make([]bool, n)
	if len(opt.Integers) == 0 {
		for i := range isInt {
			isInt[i] = true
		}
	} else {
		for _, v := range opt.Integers {
			isInt[v] = true
		}
	}

	// Save bounds so the search can mutate and restore them.
	savedLo := make([]float64, n)
	savedHi := make([]float64, n)
	for j := 0; j < n; j++ {
		savedLo[j], savedHi[j] = p.Bounds(lp.VarID(j))
	}
	defer func() {
		for j := 0; j < n; j++ {
			p.SetBounds(lp.VarID(j), savedLo[j], savedHi[j])
		}
	}()

	res := &Result{Status: Infeasible}
	maximize := p.Direction() == lp.Maximize

	better := func(a, b float64) bool {
		if maximize {
			return a > b+1e-9
		}
		return a < b-1e-9
	}

	var search func(depth int) error
	sawNodeLimit := false
	// MaxNodes and MaxTime are one internal meter, charged a unit per
	// node and polled for the deadline on every charge (the per-node LP
	// solve dwarfs a clock read). The node budget is deterministic; the
	// MaxTime deadline is a resource guard, not replayed state — a
	// truncated search reports Status=NodeLimit either way, and no
	// journal or snapshot records the wall time.
	bound := budget.New(int64(opt.MaxNodes)).WithDeadline(opt.MaxTime).DeadlineEvery(1)
	truncate := func(cause error) {
		sawNodeLimit = true
		if res.Stop == nil {
			res.Stop = cause
		}
	}
	lpOpts := opt.LP
	if lpOpts.Budget == nil {
		lpOpts.Budget = opt.Budget
	}
	search = func(depth int) error {
		if err := bound.Charge(1); err != nil {
			truncate(err)
			return nil
		}
		if err := opt.Budget.Charge(1); err != nil {
			if errors.Is(err, budget.ErrCancelled) {
				return err
			}
			truncate(err)
			return nil
		}
		res.Nodes++
		sol, err := p.Solve(lpOpts)
		if err != nil {
			// A budget stop mid-LP truncates like a node bound — unless
			// the caller cancelled, which aborts the whole search.
			if budget.IsStop(err) && !errors.Is(err, budget.ErrCancelled) {
				truncate(err)
				return nil
			}
			return err
		}
		switch sol.Status {
		case lp.Infeasible:
			return nil
		case lp.Unbounded:
			if depth == 0 {
				res.Status = Unbounded
			}
			return nil
		case lp.IterationLimit:
			// Treat as unexplorable; conservative for optimality but keeps
			// the search total.
			sawNodeLimit = true
			return nil
		}
		// Prune by bound against the incumbent.
		if res.HasIncumbent && !better(sol.Objective, res.Objective) {
			return nil
		}
		// Most fractional integral variable.
		branch := -1
		worst := opt.IntTol
		for j := 0; j < n; j++ {
			if !isInt[j] {
				continue
			}
			f := sol.X[j] - math.Floor(sol.X[j])
			dist := math.Min(f, 1-f)
			if dist > worst {
				worst = dist
				branch = j
			}
		}
		if branch < 0 {
			// Integer feasible: new incumbent.
			if !res.HasIncumbent || better(sol.Objective, res.Objective) {
				res.HasIncumbent = true
				res.Objective = sol.Objective
				res.X = append(res.X[:0], sol.X...)
			}
			return nil
		}
		v := lp.VarID(branch)
		lo, hi := p.Bounds(v)
		x := sol.X[branch]

		// Down branch: x ≤ floor.
		if fl := math.Floor(x); fl >= lo-opt.IntTol {
			p.SetBounds(v, lo, math.Min(hi, fl))
			if err := search(depth + 1); err != nil {
				return err
			}
			p.SetBounds(v, lo, hi)
		}
		// Up branch: x ≥ ceil.
		if cl := math.Ceil(x); cl <= hi+opt.IntTol {
			p.SetBounds(v, math.Max(lo, cl), hi)
			if err := search(depth + 1); err != nil {
				return err
			}
			p.SetBounds(v, lo, hi)
		}
		return nil
	}

	if err := search(0); err != nil {
		return nil, err
	}
	if res.Status == Unbounded {
		return res, nil
	}
	switch {
	case sawNodeLimit:
		res.Status = NodeLimit
	case res.HasIncumbent:
		res.Status = Optimal
	default:
		res.Status = Infeasible
	}
	return res, nil
}
