package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aquavol/internal/lp"
)

const eps = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

// Small knapsack: max 8a+11b+6c+4d, 5a+7b+4c+3d ≤ 14, binary vars.
func TestKnapsack(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	vars := make([]lp.VarID, 4)
	terms := make([]lp.Term, 4)
	for i := range vars {
		vars[i] = p.AddVariable("")
		p.SetBounds(vars[i], 0, 1)
		p.SetObjective(vars[i], vals[i])
		terms[i] = lp.Term{Var: vars[i], Coef: wts[i]}
	}
	p.AddConstraint("cap", terms, lp.LE, 14)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Objective, 21) {
		t.Fatalf("got %v obj=%v, want optimal 21 (items b+c+d)", r.Status, r.Objective)
	}
	for i, x := range r.X {
		if math.Abs(x-math.Round(x)) > 1e-5 {
			t.Fatalf("x[%d]=%v not integral", i, x)
		}
	}
}

// LP relaxation is fractional; the integer optimum differs.
func TestFractionalRelaxation(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint("c1", []lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 5)
	p.AddConstraint("c2", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 5)
	// LP optimum at (5/3, 5/3) with value 10/3; integer optimum value 3.
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Objective, 3) {
		t.Fatalf("got %v obj=%v, want optimal 3", r.Status, r.Objective)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	// 0.4 < x < 0.6 has no integer point.
	p.AddConstraint("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 0.4)
	p.AddConstraint("hi", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 0.6)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem(lp.Minimize)
	x := p.AddVariable("x")
	p.AddConstraint("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 5)
	p.AddConstraint("hi", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 3)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing several nodes, run with budget 1.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint("c1", []lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 5)
	p.AddConstraint("c2", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 5)
	r, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", r.Status)
	}
}

func TestMixedInteger(t *testing.T) {
	// y continuous, x integral: max x + 10y, x + y ≤ 3.7, y ≤ 0.5.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 10)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 3.7)
	p.AddConstraint("ycap", []lp.Term{{Var: y, Coef: 1}}, lp.LE, 0.5)
	r, err := Solve(p, Options{Integers: []lp.VarID{x}})
	if err != nil {
		t.Fatal(err)
	}
	// x=3, y=0.5 → 8.
	if r.Status != Optimal || !approx(r.Objective, 8) {
		t.Fatalf("got %v obj=%v, want optimal 8", r.Status, r.Objective)
	}
	if math.Abs(r.X[0]-3) > 1e-5 {
		t.Fatalf("x=%v, want 3", r.X[0])
	}
}

// BoundsRestored: Solve must leave the problem's bounds untouched.
func TestBoundsRestored(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x")
	p.SetBounds(x, 0, 9.5)
	p.SetObjective(x, 1)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 7.3)
	if _, err := Solve(p, Options{}); err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Bounds(x)
	if lo != 0 || hi != 9.5 {
		t.Fatalf("bounds mutated: [%v, %v]", lo, hi)
	}
}

// Property: branch and bound matches brute force on tiny bounded integer
// programs.
func TestQuickMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(2) // 2-3 vars
		ub := 3 + r.Intn(3) // box [0, ub]
		p := lp.NewProblem(lp.Maximize)
		obj := make([]float64, nv)
		vars := make([]lp.VarID, nv)
		for j := 0; j < nv; j++ {
			vars[j] = p.AddVariable("")
			p.SetBounds(vars[j], 0, float64(ub))
			obj[j] = float64(1 + r.Intn(9))
			p.SetObjective(vars[j], obj[j])
		}
		nc := 1 + r.Intn(3)
		rows := make([][]float64, nc)
		rhs := make([]float64, nc)
		for i := 0; i < nc; i++ {
			rows[i] = make([]float64, nv)
			terms := make([]lp.Term, nv)
			for j := 0; j < nv; j++ {
				rows[i][j] = float64(r.Intn(5))
				terms[j] = lp.Term{Var: vars[j], Coef: rows[i][j]}
			}
			rhs[i] = float64(2 + r.Intn(4*ub))
			p.AddConstraint("", terms, lp.LE, rhs[i])
		}
		res, err := Solve(p, Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		// Brute force over the box.
		best := math.Inf(-1)
		var rec func(j int, x []int)
		rec = func(j int, x []int) {
			if j == nv {
				for i := 0; i < nc; i++ {
					dot := 0.0
					for k := 0; k < nv; k++ {
						dot += rows[i][k] * float64(x[k])
					}
					if dot > rhs[i]+1e-9 {
						return
					}
				}
				v := 0.0
				for k := 0; k < nv; k++ {
					v += obj[k] * float64(x[k])
				}
				if v > best {
					best = v
				}
				return
			}
			for v := 0; v <= ub; v++ {
				x[j] = v
				rec(j+1, x)
			}
		}
		rec(0, make([]int, nv))
		return approx(res.Objective, best)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
