package faults_test

import (
	"testing"

	"aquavol/internal/faults"
)

func TestParseDiskProfile(t *testing.T) {
	p, err := faults.ParseDiskProfile("write=0.1, sync=0.05,lying=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.WriteErr != 0.1 || p.SyncErr != 0.05 || p.LyingSync != 0.01 || p.ShortWrite != 0 {
		t.Fatalf("parsed %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("non-zero profile reports disabled")
	}
	if q, err := faults.ParseDiskProfile(p.String()); err != nil || q != p {
		t.Fatalf("String round-trip: %+v vs %+v (%v)", q, p, err)
	}
	if zero, err := faults.ParseDiskProfile(""); err != nil || zero.Enabled() {
		t.Fatalf("empty spec: %+v, %v", zero, err)
	}
	for _, bad := range []string{"write", "frob=0.1", "write=x", "write=1.5", "sync=-0.1"} {
		if _, err := faults.ParseDiskProfile(bad); err == nil {
			t.Errorf("ParseDiskProfile(%q) accepted", bad)
		}
	}
}

// The disk stream is its own PRNG: zero-rate classes consume no
// randomness, and identical seeds replay identical fates.
func TestDiskInjectorDeterministic(t *testing.T) {
	draw := func(seed int64) (fates []bool) {
		d := faults.NewDisk(faults.DiskProfile{WriteErr: 0.5}, seed)
		for i := 0; i < 32; i++ {
			fail, short := d.WriteFault()
			fates = append(fates, fail, short)
			sfail, lying := d.SyncFault() // zero-rate: must never fire, no draw
			if sfail || lying {
				t.Fatal("zero-rate sync class fired")
			}
		}
		return fates
	}
	a, b := draw(3), draw(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs for identical seeds", i)
		}
	}
	c := draw(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds realized identical fates (suspicious)")
	}
}
