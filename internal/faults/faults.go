// Package faults models imperfect PLoC fluidics as a deterministic,
// seeded fault layer pluggable into the AquaCore simulator
// (aquacore.Config.Faults). The paper's planners assume ideal hardware;
// this package supplies the regime where run-time volume management and
// reactive regeneration (§3.5, §4.3) become recovery mechanisms rather
// than baselines:
//
//   - metering error: every planned transfer is scaled by a relative
//     jitter drawn uniformly from [1-MeterJitter, 1+MeterJitter];
//   - dead volume: every transport loses a fixed absolute volume in the
//     channel (never more than was drawn);
//   - evaporation: every vessel loses a fraction 1-exp(-EvapRate·dt) of
//     its contents per dt seconds of elapsed simulated wet time;
//   - sensor noise: readings are scaled by a relative jitter drawn from
//     [1-SenseNoise, 1+SenseNoise];
//   - transient failure: with probability FailRate a wet operation
//     (move, mix, incubate, separation, concentrate) does nothing this
//     attempt — the retry-able fault class.
//
// Determinism contract: all randomness comes from one PRNG seeded at
// construction, and the machine draws in a fixed per-instruction order
// (failure draw first, then the metering or sensing draw). A run is
// therefore exactly reproducible from (listing, plan, seed, Profile),
// which is what makes chaos runs diffable and CI-gateable.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ErrCrash is the simulated process kill a CrashPoint injects: the run
// dies at an instruction boundary exactly as if the host process had been
// killed there, leaving the journal tail as-is. Chaos harnesses match it
// with errors.Is to distinguish scheduled kills from real aborts.
//
//fluidvet:allow errwrap produced by internal/recover, which wraps it with %w at the crash boundary
var ErrCrash = errors.New("faults: simulated process crash")

// CrashPoint schedules one deterministic simulated process kill at an
// instruction boundary. A nil *CrashPoint never fires. Unlike the other
// fault classes it draws no randomness: chaos harnesses sweep it over
// every boundary of a run, which requires the kill location to be exact.
type CrashPoint struct {
	// Boundary is the 0-based instruction-boundary ordinal at which the
	// process dies (boundary n is crossed after the n-th main-loop
	// instruction completes).
	Boundary int
}

// CrashAt builds a crash point for boundary n.
func CrashAt(n int) *CrashPoint { return &CrashPoint{Boundary: n} }

// Fires reports whether the process dies at boundary n. Nil-safe.
func (c *CrashPoint) Fires(n int) bool { return c != nil && c.Boundary == n }

// Profile is a plain description of the injected physics. The zero value
// injects nothing.
type Profile struct {
	// MeterJitter is the relative metering error of transports: a planned
	// volume v is delivered as v·(1+u·MeterJitter), u uniform in [-1, 1].
	MeterJitter float64
	// DeadVolume is the absolute volume (nl) lost in the channel per
	// transport, capped at the drawn volume.
	DeadVolume float64
	// EvapRate is the evaporation rate constant (1/s): over dt seconds of
	// wet time every vessel loses the fraction 1-exp(-EvapRate·dt).
	EvapRate float64
	// SenseNoise is the relative error applied to sensor readings.
	SenseNoise float64
	// FailRate is the probability a wet operation transiently fails,
	// delivering/doing nothing this attempt.
	FailRate float64
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.MeterJitter > 0 || p.DeadVolume > 0 || p.EvapRate > 0 ||
		p.SenseNoise > 0 || p.FailRate > 0
}

// String renders the profile in the canonical k=v form ParseProfile
// accepts.
func (p Profile) String() string {
	return fmt.Sprintf("jitter=%g,dead=%g,evap=%g,noise=%g,fail=%g",
		p.MeterJitter, p.DeadVolume, p.EvapRate, p.SenseNoise, p.FailRate)
}

// Validate checks the profile is physically meaningful.
func (p Profile) Validate() error {
	switch {
	case p.MeterJitter < 0 || p.MeterJitter >= 1:
		return fmt.Errorf("faults: MeterJitter must be in [0, 1), got %v", p.MeterJitter)
	case p.DeadVolume < 0 || math.IsInf(p.DeadVolume, 0):
		return fmt.Errorf("faults: DeadVolume must be non-negative and finite, got %v", p.DeadVolume)
	case p.EvapRate < 0 || math.IsInf(p.EvapRate, 0):
		return fmt.Errorf("faults: EvapRate must be non-negative and finite, got %v", p.EvapRate)
	case p.SenseNoise < 0 || p.SenseNoise >= 1:
		return fmt.Errorf("faults: SenseNoise must be in [0, 1), got %v", p.SenseNoise)
	case p.FailRate < 0 || p.FailRate > 1:
		return fmt.Errorf("faults: FailRate must be in [0, 1], got %v", p.FailRate)
	}
	return nil
}

// Presets returns the named profiles, mildest first.
func Presets() []string { return []string{"none", "mild", "moderate", "harsh"} }

// Preset returns a named profile. "none" is the zero profile.
func Preset(name string) (Profile, bool) {
	switch name {
	case "none":
		return Profile{}, true
	case "mild":
		return Profile{MeterJitter: 0.01, DeadVolume: 0.02, EvapRate: 1e-5, SenseNoise: 0.01, FailRate: 0.002}, true
	case "moderate":
		return Profile{MeterJitter: 0.02, DeadVolume: 0.05, EvapRate: 5e-5, SenseNoise: 0.02, FailRate: 0.01}, true
	case "harsh":
		return Profile{MeterJitter: 0.05, DeadVolume: 0.2, EvapRate: 2e-4, SenseNoise: 0.05, FailRate: 0.05}, true
	}
	return Profile{}, false
}

// ParseProfile parses either a preset name (none/mild/moderate/harsh) or
// a comma-separated k=v list with keys jitter, dead, evap, noise, fail
// (e.g. "jitter=0.02,dead=0.05,fail=0.01"; omitted keys are zero).
func ParseProfile(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if p, ok := Preset(s); ok {
		return p, nil
	}
	var p Profile
	if s == "" {
		return p, nil
	}
	fields := map[string]*float64{
		"jitter": &p.MeterJitter,
		"dead":   &p.DeadVolume,
		"evap":   &p.EvapRate,
		"noise":  &p.SenseNoise,
		"fail":   &p.FailRate,
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faults: bad profile term %q (want preset %s or k=v list)",
				kv, strings.Join(Presets(), "|"))
		}
		dst, ok := fields[strings.TrimSpace(k)]
		if !ok {
			keys := make([]string, 0, len(fields))
			for name := range fields {
				keys = append(keys, name)
			}
			sort.Strings(keys)
			return Profile{}, fmt.Errorf("faults: unknown profile key %q (have %s)", k, strings.Join(keys, ", "))
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return Profile{}, fmt.Errorf("faults: bad value for %q: %w", k, err)
		}
		*dst = x
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// Injector draws fault realizations from a single seeded PRNG. It is the
// pluggable object aquacore.Config.Faults accepts; one injector serves
// exactly one run (the stream position is part of the machine state).
type Injector struct {
	p    Profile
	seed int64
	rng  *rand.Rand
	// draws counts PRNG draws consumed so far: the stream position. It is
	// machine state — snapshots record it, and AdvanceTo replays a fresh
	// injector to it so a resumed run sees the same remaining randomness.
	draws uint64
}

// New creates an injector for one run. The same (Profile, seed) always
// yields the same fault realizations given the same draw sequence.
func New(p Profile, seed int64) *Injector {
	return &Injector{p: p, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the injected profile.
func (in *Injector) Profile() Profile { return in.p }

// Seed returns the construction seed.
func (in *Injector) Seed() int64 { return in.seed }

// Enabled reports whether the injector does anything.
func (in *Injector) Enabled() bool { return in != nil && in.p.Enabled() }

// Draws returns the PRNG stream position: how many draws have been
// consumed since construction.
func (in *Injector) Draws() uint64 { return in.draws }

// draw consumes one PRNG value, advancing the recorded stream position.
// Every randomized fault class funnels through it so Draws() is exact.
func (in *Injector) draw() float64 {
	in.draws++
	return in.rng.Float64()
}

// AdvanceTo fast-forwards the stream to absolute position draws by
// consuming and discarding values. The stream cannot be rewound: restoring
// a snapshot requires a freshly-constructed injector with the same
// (Profile, seed).
func (in *Injector) AdvanceTo(draws uint64) error {
	if draws < in.draws {
		return fmt.Errorf("faults: cannot rewind PRNG stream to %d (already at %d); restore onto a fresh injector", draws, in.draws)
	}
	for in.draws < draws {
		in.draw()
	}
	return nil
}

// Fails draws the transient-failure coin for one wet operation. Profiles
// with FailRate 0 consume no randomness, so disabling one fault class
// never perturbs the others' draw sequence.
func (in *Injector) Fails() bool {
	if in.p.FailRate <= 0 {
		return false
	}
	return in.draw() < in.p.FailRate
}

// Meter applies metering jitter to a planned transfer volume.
func (in *Injector) Meter(vol float64) float64 {
	if in.p.MeterJitter <= 0 || vol <= 0 {
		return vol
	}
	u := 2*in.draw() - 1
	v := vol * (1 + u*in.p.MeterJitter)
	if v < 0 {
		v = 0
	}
	return v
}

// Dead returns the absolute dead-volume loss of one transport (the caller
// caps it at the drawn volume).
func (in *Injector) Dead() float64 { return in.p.DeadVolume }

// EvapFraction returns the fraction of every vessel's contents lost to
// evaporation over dt seconds of wet time. It is deterministic (no PRNG
// draw): evaporation is a rate process, not a point event.
func (in *Injector) EvapFraction(dt float64) float64 {
	if in.p.EvapRate <= 0 || dt <= 0 {
		return 0
	}
	return 1 - math.Exp(-in.p.EvapRate*dt)
}

// Sense applies sensor noise to a reading.
func (in *Injector) Sense(reading float64) float64 {
	if in.p.SenseNoise <= 0 {
		return reading
	}
	u := 2*in.draw() - 1
	return reading * (1 + u*in.p.SenseNoise)
}
