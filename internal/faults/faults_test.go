package faults_test

import (
	"testing"

	"aquavol/internal/faults"
)

func TestParseProfilePresets(t *testing.T) {
	for _, name := range faults.Presets() {
		p, err := faults.ParseProfile(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if name == "none" {
			if p.Enabled() {
				t.Errorf("preset none must be disabled, got %v", p)
			}
			continue
		}
		if !p.Enabled() {
			t.Errorf("preset %q must be enabled", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
}

func TestParseProfileKV(t *testing.T) {
	p, err := faults.ParseProfile("jitter=0.03, dead=0.2, fail=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.MeterJitter != 0.03 || p.DeadVolume != 0.2 || p.FailRate != 0.5 {
		t.Errorf("parsed %+v", p)
	}
	if p.EvapRate != 0 || p.SenseNoise != 0 {
		t.Errorf("omitted keys must stay zero: %+v", p)
	}
	// Round trip through the canonical rendering.
	q, err := faults.ParseProfile(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip %v != %v", q, p)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus-preset-and-no-equals",
		"spin=1",
		"jitter=notanumber",
		"jitter=1.5", // out of range
		"fail=2",
	} {
		if _, err := faults.ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) should fail", bad)
		}
	}
}

// Identical (profile, seed) pairs must produce identical draw sequences;
// a different seed must diverge.
func TestInjectorDeterminism(t *testing.T) {
	p, _ := faults.Preset("harsh")
	draw := func(seed int64) []float64 {
		in := faults.New(p, seed)
		var out []float64
		for i := 0; i < 64; i++ {
			if in.Fails() {
				out = append(out, -1)
			}
			out = append(out, in.Meter(10), in.Sense(5))
		}
		return out
	}
	a, b := draw(42), draw(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical draw sequences")
	}
}

// Disabled fault classes must not consume randomness, so enabling one
// class cannot perturb another's realizations.
func TestDisabledClassesDrawNothing(t *testing.T) {
	jitterOnly := faults.Profile{MeterJitter: 0.05}
	a := faults.New(jitterOnly, 7)
	b := faults.New(jitterOnly, 7)
	// a interleaves no-op draws; b does not. Metering must still agree.
	for i := 0; i < 32; i++ {
		if a.Fails() {
			t.Fatal("FailRate 0 must never fail")
		}
		_ = a.Sense(1) // no-op: SenseNoise 0
		va, vb := a.Meter(10), b.Meter(10)
		if va != vb {
			t.Fatalf("draw %d: %v vs %v — disabled classes consumed randomness", i, va, vb)
		}
	}
}

func TestEvapFraction(t *testing.T) {
	in := faults.New(faults.Profile{EvapRate: 1e-4}, 1)
	if f := in.EvapFraction(0); f != 0 {
		t.Errorf("EvapFraction(0) = %v", f)
	}
	f := in.EvapFraction(1000)
	if f <= 0 || f >= 1 {
		t.Errorf("EvapFraction(1000) = %v, want in (0, 1)", f)
	}
	if g := in.EvapFraction(1e12); g > 1 {
		t.Errorf("evaporation can never exceed the vessel contents: %v", g)
	}
}

func TestMeterClampsNonNegative(t *testing.T) {
	in := faults.New(faults.Profile{MeterJitter: 0.99}, 3)
	for i := 0; i < 1000; i++ {
		if v := in.Meter(1); v < 0 {
			t.Fatalf("Meter produced negative volume %v", v)
		}
	}
}
