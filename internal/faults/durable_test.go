package faults_test

import (
	"testing"

	"aquavol/internal/faults"
)

// The draw counter must count exactly the PRNG draws consumed, and
// AdvanceTo must reproduce the stream: a fresh injector fast-forwarded to
// draw position n yields the same subsequent values as one that arrived
// there by injecting.
func TestDrawsAndAdvanceTo(t *testing.T) {
	p := faults.Profile{MeterJitter: 0.05, SenseNoise: 0.05, FailRate: 0.5}
	a := faults.New(p, 77)
	if a.Draws() != 0 {
		t.Fatalf("fresh injector Draws() = %d", a.Draws())
	}
	a.Fails()         // 1 draw
	a.Meter(10)       // 1 draw
	a.Sense(3)        // 1 draw
	a.Meter(0)        // vol<=0: no draw
	a.EvapFraction(5) // rate process: no draw
	if a.Draws() != 3 {
		t.Fatalf("Draws() = %d, want 3", a.Draws())
	}

	b := faults.New(p, 77)
	if err := b.AdvanceTo(a.Draws()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		av, bv := a.Meter(100), b.Meter(100)
		if av != bv {
			t.Fatalf("draw %d after replay: %v != %v", i, av, bv)
		}
	}
	if a.Draws() != b.Draws() {
		t.Fatalf("stream positions diverged: %d vs %d", a.Draws(), b.Draws())
	}

	// Rewinding is an error.
	if err := b.AdvanceTo(0); err == nil {
		t.Fatal("AdvanceTo accepted a rewind")
	}
}

// Zero-rate fault classes leave the counter untouched, so a snapshot's
// recorded position is exact whatever the profile.
func TestZeroProfileCountsNoDraws(t *testing.T) {
	in := faults.New(faults.Profile{DeadVolume: 1}, 5)
	in.Fails()
	in.Meter(10)
	in.Sense(2)
	if in.Draws() != 0 {
		t.Fatalf("disabled classes consumed %d draws", in.Draws())
	}
}

// CrashPoint fires at exactly its boundary; nil never fires.
func TestCrashPoint(t *testing.T) {
	var c *faults.CrashPoint
	for n := 0; n < 4; n++ {
		if c.Fires(n) {
			t.Fatal("nil crash point fired")
		}
	}
	c = faults.CrashAt(2)
	for n := 0; n < 5; n++ {
		if got, want := c.Fires(n), n == 2; got != want {
			t.Fatalf("Fires(%d) = %v, want %v", n, got, want)
		}
	}
}
