package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// DiskProfile describes probabilistic storage-fault injection: the rates
// at which the vfs layer's operations fail. Like Profile it is a plain
// description; the randomness lives in DiskInjector. The zero value
// injects nothing.
type DiskProfile struct {
	// WriteErr is the probability a write fails outright with EIO
	// (nothing written).
	WriteErr float64
	// ShortWrite is the probability a write delivers only part of its
	// bytes before failing with ENOSPC.
	ShortWrite float64
	// SyncErr is the probability an fsync reports failure while the
	// written bytes in fact reached the disk (a transient, honest error).
	SyncErr float64
	// LyingSync is the probability an fsync reports failure AND the bytes
	// buffered since the last successful fsync are dropped — the
	// "fsyncgate" page-cache semantics real kernels exhibit.
	LyingSync float64
}

// Enabled reports whether the profile injects any storage fault at all.
func (p DiskProfile) Enabled() bool {
	return p.WriteErr > 0 || p.ShortWrite > 0 || p.SyncErr > 0 || p.LyingSync > 0
}

// String renders the profile in the canonical k=v form ParseDiskProfile
// accepts.
func (p DiskProfile) String() string {
	return fmt.Sprintf("write=%g,short=%g,sync=%g,lying=%g",
		p.WriteErr, p.ShortWrite, p.SyncErr, p.LyingSync)
}

// Validate checks every rate is a probability.
func (p DiskProfile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"WriteErr", p.WriteErr},
		{"ShortWrite", p.ShortWrite},
		{"SyncErr", p.SyncErr},
		{"LyingSync", p.LyingSync},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: disk %s must be in [0, 1], got %v", f.name, f.v)
		}
	}
	return nil
}

// ParseDiskProfile parses a comma-separated k=v list with keys write,
// short, sync, lying (e.g. "write=0.01,sync=0.005"; omitted keys are
// zero). The empty string is the zero profile.
func ParseDiskProfile(s string) (DiskProfile, error) {
	var p DiskProfile
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	fields := map[string]*float64{
		"write": &p.WriteErr,
		"short": &p.ShortWrite,
		"sync":  &p.SyncErr,
		"lying": &p.LyingSync,
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return DiskProfile{}, fmt.Errorf("faults: bad disk-profile term %q (want k=v list)", kv)
		}
		dst, ok := fields[strings.TrimSpace(k)]
		if !ok {
			keys := make([]string, 0, len(fields))
			for name := range fields {
				keys = append(keys, name)
			}
			sort.Strings(keys)
			return DiskProfile{}, fmt.Errorf("faults: unknown disk-profile key %q (have %s)", k, strings.Join(keys, ", "))
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return DiskProfile{}, fmt.Errorf("faults: bad value for %q: %w", k, err)
		}
		*dst = x
	}
	if err := p.Validate(); err != nil {
		return DiskProfile{}, err
	}
	return p, nil
}

// DiskInjector draws storage-fault realizations from its own seeded PRNG
// stream — deliberately separate from Injector's fluidic stream, whose
// position is machine state carried in snapshots: disk faults strike the
// I/O layer, and a resumed run performs different I/O than the original,
// so sharing one stream would break resume determinism. The same
// (DiskProfile, seed) and the same operation sequence always realize the
// same faults.
type DiskInjector struct {
	p   DiskProfile
	rng *rand.Rand
}

// NewDisk creates a storage-fault injector for one run.
func NewDisk(p DiskProfile, seed int64) *DiskInjector {
	return &DiskInjector{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the injected profile.
func (d *DiskInjector) Profile() DiskProfile { return d.p }

// Enabled reports whether the injector does anything. Nil-safe.
func (d *DiskInjector) Enabled() bool { return d != nil && d.p.Enabled() }

// WriteFault draws the fate of one write. Exactly one of fail/short can
// be set. Classes with zero rate consume no randomness, so disabling one
// fault class never perturbs the others' draw sequence.
func (d *DiskInjector) WriteFault() (fail, short bool) {
	if d.p.WriteErr > 0 && d.rng.Float64() < d.p.WriteErr {
		return true, false
	}
	if d.p.ShortWrite > 0 && d.rng.Float64() < d.p.ShortWrite {
		return false, true
	}
	return false, false
}

// SyncFault draws the fate of one fsync. lying implies fail.
func (d *DiskInjector) SyncFault() (fail, lying bool) {
	if d.p.SyncErr > 0 && d.rng.Float64() < d.p.SyncErr {
		return true, false
	}
	if d.p.LyingSync > 0 && d.rng.Float64() < d.p.LyingSync {
		return true, true
	}
	return false, false
}
