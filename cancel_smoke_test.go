// Cancellation smoke tests for the budget layer: every certified entry
// point runs on N goroutines while a sibling goroutine cancels their
// shared meter, under `go test -race` (ci.sh runs the race tier). The
// cancellable entry points must all come back with the typed
// caller-cancelled cause — no deadlock, no torn state, no race report.
// The two certified entry points without a budget channel
// ((*dag.Graph).Validate and aisverify.Verify) are the controls: they
// take no meter, so they must complete normally while the cancel storm
// rages around them.
package aquavol

import (
	"errors"
	"fmt"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aisverify"
	"aquavol/internal/analysis"
	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/certify"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/fluidvet"
	"aquavol/internal/ilp"
	"aquavol/internal/lang"
	"aquavol/internal/lp"
)

// cancelSmokeMaxIters bounds each worker's solve loop: cancellation
// detection is stride-bounded, so the typed stop must arrive within a
// few iterations; thousands means the cancel was lost.
const cancelSmokeMaxIters = 10000

// runUntilCancelled hammers run on N goroutines against a shared meter,
// cancels from this (sibling) goroutine, and requires every worker to
// come back with the typed caller-cancelled cause.
func runUntilCancelled(t *testing.T, run func(m *budget.Meter) error) {
	t.Helper()
	meter := budget.New(0)
	errc := make(chan error, smokeGoroutines)
	for i := 0; i < smokeGoroutines; i++ {
		go func() {
			for n := 0; n < cancelSmokeMaxIters; n++ {
				if err := run(meter); err != nil {
					errc <- err
					return
				}
			}
			errc <- fmt.Errorf("no cancellation observed in %d solves", cancelSmokeMaxIters)
		}()
	}
	meter.Cancel()
	for i := 0; i < smokeGoroutines; i++ {
		if err := <-errc; !errors.Is(err, budget.ErrCancelled) {
			t.Errorf("worker %d: %v, want the typed caller-cancelled cause", i, err)
		}
	}
}

// cancelExercises maps each certified entry point to its cancellation
// smoke; TestCancelSmoke walks fluidvet.CertifiedEntryPoints, so a
// newly certified function without a cancellation story fails the
// suite (explicitly marked controls included).
var cancelExercises = map[string]func(t *testing.T){
	"aquavol/internal/core.DAGSolve":         cancelSmokeDAGSolve,
	"aquavol/internal/core.SolveResidual":    cancelSmokeSolveResidual,
	"(*aquavol/internal/lp.Problem).Solve":   cancelSmokeLPSolve,
	"aquavol/internal/ilp.Solve":             cancelSmokeILPSolve,
	"aquavol/internal/analysis.Analyze":      cancelSmokeAnalyze,
	"(*aquavol/internal/dag.Graph).Validate": cancelControlValidate,
	"aquavol/internal/aisverify.Verify":      cancelControlVerify,
	"aquavol/internal/certify.CheckPlan":     cancelSmokeCertifyPlan,
	"aquavol/internal/certify.CheckResidual": cancelSmokeCertifyResidual,
}

func TestCancelSmoke(t *testing.T) {
	for _, name := range fluidvet.CertifiedEntryPoints {
		fn, ok := cancelExercises[name]
		if !ok {
			t.Errorf("certified entry point %s has no cancellation smoke exercise", name)
			continue
		}
		t.Run(name, fn)
	}
	if len(cancelExercises) != len(fluidvet.CertifiedEntryPoints) {
		t.Errorf("cancellation exercises cover %d entry points, certificate lists %d",
			len(cancelExercises), len(fluidvet.CertifiedEntryPoints))
	}
}

func cancelSmokeDAGSolve(t *testing.T) {
	runUntilCancelled(t, func(m *budget.Meter) error {
		c := cfg()
		c.Budget = m
		_, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
		return err
	})
}

func cancelSmokeSolveResidual(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	mx := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", mx)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, mx.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	live := func(sourceID int, port string) (float64, bool) { return 37.5, true }
	runUntilCancelled(t, func(m *budget.Meter) error {
		c := cfg()
		c.Budget = m
		_, err := core.SolveResidual(r, c, live)
		return err
	})
}

func cancelSmokeLPSolve(t *testing.T) {
	g := assays.GlucoseDAG()
	runUntilCancelled(t, func(m *budget.Meter) error {
		f, err := core.Formulate(g, cfg(), core.FormulateOptions{}, nil)
		if err != nil {
			return err
		}
		_, err = f.Prob.Solve(lp.Options{Budget: m})
		return err
	})
}

func cancelSmokeILPSolve(t *testing.T) {
	c := cfg()
	unitCfg := core.Config{
		MaxCapacity: c.MaxCapacity / c.LeastCount,
		LeastCount:  1,
		OutputSkew:  c.OutputSkew,
	}
	runUntilCancelled(t, func(m *budget.Meter) error {
		f, err := core.Formulate(assays.GlucoseDAG(), unitCfg, core.FormulateOptions{}, nil)
		if err != nil {
			return err
		}
		_, err = ilp.Solve(f.Prob, ilp.Options{MaxNodes: 20000, Budget: m})
		return err
	})
}

func cancelSmokeAnalyze(t *testing.T) {
	prog, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	runUntilCancelled(t, func(m *budget.Meter) error {
		c := cfg()
		c.Budget = m
		_, err := analysis.Analyze(prog, c, analysis.Options{})
		return err
	})
}

// cancelSmokeCertifyPlan: the checker charges cfg.Budget per node,
// edge, constraint, and variable, so a cancelled meter must surface the
// typed cause, never a certification error.
func cancelSmokeCertifyPlan(t *testing.T) {
	plan, err := core.DAGSolve(assays.GlucoseDAG(), cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	runUntilCancelled(t, func(m *budget.Meter) error {
		c := cfg()
		c.Budget = m
		return certify.CheckPlan(plan, c, nil)
	})
}

func cancelSmokeCertifyResidual(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	mx := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", mx)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, mx.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	live := func(sourceID int, port string) (float64, bool) { return 37.5, true }
	rp, err := core.SolveResidual(r, cfg(), live)
	if err != nil {
		t.Fatal(err)
	}
	runUntilCancelled(t, func(m *budget.Meter) error {
		c := cfg()
		c.Budget = m
		return certify.CheckResidual(rp, c, live)
	})
}

// cancelControlValidate: no budget channel — must complete normally on
// every goroutine while a sibling cancels an (unrelated) meter.
func cancelControlValidate(t *testing.T) {
	g := assays.GlycomicsDAG()
	meter := budget.New(0)
	meter.Cancel()
	hammer(t, smokeGoroutines, func(worker int) error {
		return g.Validate()
	})
}

// cancelControlVerify: no budget channel — same control contract.
func cancelControlVerify(t *testing.T) {
	prog, err := ais.Assemble("input s1, ip1\nmove-abs mixer1, s1, 0.5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	meter := budget.New(0)
	meter.Cancel()
	hammer(t, smokeGoroutines, func(worker int) error {
		if got := aisverify.Verify(prog, aisverify.Options{}); len(got) == 0 {
			return fmt.Errorf("witness program produced no findings")
		}
		return nil
	})
}
