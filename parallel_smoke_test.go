// Concurrency smoke tests for the //fluidvet:parallelsafe certificates:
// every certified entry point is hammered by N goroutines over the
// shipped assays under `go test -race` (ci.sh runs the race tier), so
// the static certification is backed by a dynamic witness. Results are
// compared against a sequential baseline — the solvers are
// deterministic, so any divergence under concurrency is itself a
// finding, not just a race-detector report.
package aquavol

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aisverify"
	"aquavol/internal/analysis"
	"aquavol/internal/assays"
	"aquavol/internal/certify"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/fluidvet"
	"aquavol/internal/ilp"
	"aquavol/internal/lang"
	"aquavol/internal/lp"
)

// smokeGoroutines is N: enough to give the race detector interleavings
// to chew on without slowing the tier-1 suite.
const smokeGoroutines = 16

// hammer runs fn on n concurrent goroutines and fails the test on the
// first error any of them returns.
func hammer(t *testing.T, n int, fn func(worker int) error) {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			errs[i] = fn(i)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// smokeExercises maps each certified entry point to its exercise;
// TestParallelSmoke walks fluidvet.CertifiedEntryPoints, so a newly
// certified function without a smoke exercise fails the suite.
var smokeExercises = map[string]func(t *testing.T){
	"aquavol/internal/core.DAGSolve":         smokeDAGSolve,
	"aquavol/internal/core.SolveResidual":    smokeSolveResidual,
	"(*aquavol/internal/lp.Problem).Solve":   smokeLPSolve,
	"aquavol/internal/ilp.Solve":             smokeILPSolve,
	"(*aquavol/internal/dag.Graph).Validate": smokeValidate,
	"aquavol/internal/analysis.Analyze":      smokeAnalyze,
	"aquavol/internal/aisverify.Verify":      smokeVerify,
	"aquavol/internal/certify.CheckPlan":     smokeCertifyPlan,
	"aquavol/internal/certify.CheckResidual": smokeCertifyResidual,
}

func TestParallelSmoke(t *testing.T) {
	for _, name := range fluidvet.CertifiedEntryPoints {
		fn, ok := smokeExercises[name]
		if !ok {
			t.Errorf("certified entry point %s has no concurrency smoke exercise", name)
			continue
		}
		t.Run(name, fn)
	}
	if len(smokeExercises) != len(fluidvet.CertifiedEntryPoints) {
		t.Errorf("smoke exercises cover %d entry points, certificate lists %d",
			len(smokeExercises), len(fluidvet.CertifiedEntryPoints))
	}
}

// smokeDAGSolve solves the shipped assay DAGs from N goroutines sharing
// the graphs, comparing every plan against a sequential baseline.
func smokeDAGSolve(t *testing.T) {
	graphs := map[string]*dag.Graph{
		"fig2":    assays.Fig2DAG(),
		"glucose": assays.GlucoseDAG(),
		"enzyme4": assays.EnzymeDAG(4),
	}
	baseline := map[string][]float64{}
	for name, g := range graphs {
		plan, err := core.DAGSolve(g, cfg(), nil)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		// enzyme4 underflows by design (the paper's Fig. 6 hierarchy
		// exists to repair it); the smoke only needs the raw solve to be
		// deterministic under concurrency.
		if name != "enzyme4" && !plan.Feasible() {
			t.Fatalf("%s baseline infeasible: %v", name, plan.Underflows)
		}
		baseline[name] = plan.EdgeVolume
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		for name, g := range graphs {
			plan, err := core.DAGSolve(g, cfg(), nil)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if !reflect.DeepEqual(plan.EdgeVolume, baseline[name]) {
				return fmt.Errorf("%s: concurrent plan diverges from baseline", name)
			}
		}
		return nil
	})
}

// smokeSolveResidual replans a half-executed assay remainder from N
// goroutines sharing the residual and a race-free live callback.
func smokeSolveResidual(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", m)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, m.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	live := func(sourceID int, port string) (float64, bool) { return 37.5, true }

	base, err := core.SolveResidual(r, cfg(), live)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		rp, err := core.SolveResidual(r, cfg(), live)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(rp.Plan.EdgeVolume, base.Plan.EdgeVolume) {
			return fmt.Errorf("concurrent residual plan diverges from baseline")
		}
		return nil
	})
}

// smokeLPSolve runs the simplex on distinct Problems (the certificate's
// contract: the receiver is mutable state) built from a shared graph.
func smokeLPSolve(t *testing.T) {
	g := assays.GlucoseDAG()
	fBase, err := core.Formulate(g, cfg(), core.FormulateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := fBase.Prob.Solve(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != lp.Optimal {
		t.Fatalf("baseline LP status %v", base.Status)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		f, err := core.Formulate(g, cfg(), core.FormulateOptions{}, nil)
		if err != nil {
			return err
		}
		sol, err := f.Prob.Solve(lp.Options{})
		if err != nil {
			return err
		}
		if sol.Status != lp.Optimal {
			return fmt.Errorf("status %v, want optimal", sol.Status)
		}
		if !reflect.DeepEqual(sol.X, base.X) {
			return fmt.Errorf("concurrent LP solution diverges from baseline")
		}
		return nil
	})
}

// smokeILPSolve runs branch and bound on distinct Problems (ilp.Solve
// tightens bounds on its receiver during the search).
func smokeILPSolve(t *testing.T) {
	c := cfg()
	unitCfg := core.Config{
		MaxCapacity: c.MaxCapacity / c.LeastCount,
		LeastCount:  1,
		OutputSkew:  c.OutputSkew,
	}
	solve := func() (*ilp.Result, error) {
		f, err := core.Formulate(assays.GlucoseDAG(), unitCfg, core.FormulateOptions{}, nil)
		if err != nil {
			return nil, err
		}
		return ilp.Solve(f.Prob, ilp.Options{MaxNodes: 20000})
	}
	base, err := solve()
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		res, err := solve()
		if err != nil {
			return err
		}
		if res.Status != base.Status || res.Nodes != base.Nodes {
			return fmt.Errorf("concurrent ILP search diverges: %v/%d nodes vs %v/%d",
				res.Status, res.Nodes, base.Status, base.Nodes)
		}
		return nil
	})
}

// smokeValidate validates one shared, unmutated graph from N goroutines.
func smokeValidate(t *testing.T) {
	g := assays.GlycomicsDAG()
	hammer(t, smokeGoroutines, func(worker int) error {
		return g.Validate()
	})
}

// smokeAnalyze lints one shared elaborated program from N goroutines.
func smokeAnalyze(t *testing.T) {
	prog, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	base, err := analysis.Analyze(prog, cfg(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		got, err := analysis.Analyze(prog, cfg(), analysis.Options{})
		if err != nil {
			return err
		}
		if len(got) != len(base) {
			return fmt.Errorf("concurrent lint found %d findings, baseline %d", len(got), len(base))
		}
		return nil
	})
}

// smokeCertifyPlan certifies one shared solved plan from N goroutines
// (the certificate's contract: the checker only reads the plan, graph,
// and config it is handed).
func smokeCertifyPlan(t *testing.T) {
	g := assays.GlucoseDAG()
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("baseline plan infeasible: %v", plan.Underflows)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		return certify.CheckPlan(plan, cfg(), nil)
	})
}

// smokeCertifyResidual certifies one shared residual replan from N
// goroutines sharing the residual and a race-free live callback.
func smokeCertifyResidual(t *testing.T) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", m)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, m.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	live := func(sourceID int, port string) (float64, bool) { return 37.5, true }
	rp, err := core.SolveResidual(r, cfg(), live)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		return certify.CheckResidual(rp, cfg(), live)
	})
}

// smokeVerify verifies one shared assembled AIS program from N
// goroutines. The witness program carries a deliberate least-count
// violation so the finding set is non-empty and comparable.
func smokeVerify(t *testing.T) {
	prog, err := ais.Assemble("input s1, ip1\nmove-abs mixer1, s1, 0.5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	base := aisverify.Verify(prog, aisverify.Options{})
	if len(base) == 0 {
		t.Fatal("witness program produced no baseline findings")
	}
	hammer(t, smokeGoroutines, func(worker int) error {
		got := aisverify.Verify(prog, aisverify.Options{})
		if len(got) != len(base) {
			return fmt.Errorf("concurrent verify found %d findings, baseline %d", len(got), len(base))
		}
		return nil
	})
}
