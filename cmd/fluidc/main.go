// Command fluidc compiles an assay-language source file to AquaCore
// Instruction Set code with an automatically-managed volume plan: the full
// pipeline of the paper (parse → check → elaborate/unroll → volume
// management hierarchy → code generation).
//
// Usage:
//
//	fluidc [-plan] [-dot] [-lint] [-Werror] [-no-manage] [-no-verify] [-no-certify] assay.asy
//
// -plan prints the volume plan alongside the listing, -dot emits the
// (transformed) assay DAG in Graphviz format, -lint runs the compile-time
// volume-safety analyzer (see cmd/fluidlint) before volume management and
// fails on error findings, -Werror additionally promotes lint warnings to
// errors, -no-manage skips the cascading/replication hierarchy (plain
// DAGSolve only).
//
// Every solved plan (including each statically-solved partition of a
// staged assay) is certified by the independent checker
// (internal/certify) before code generation; a certification failure
// fails the compile. -no-certify skips this pass. -mutate-plan perturbs
// the solved plan before certification, to prove the gate fires (used by
// CI; a mutated compile must exit non-zero).
//
// After code generation the emitted listing is checked by the
// instruction-level verifier (internal/aisverify) against the volume plan;
// error findings fail the compile. -no-verify skips this pass.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"aquavol/internal/ais"
	"aquavol/internal/aisverify"
	"aquavol/internal/analysis"
	"aquavol/internal/aquacore"
	"aquavol/internal/certify"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/diag"
	"aquavol/internal/lang"
)

func main() {
	showPlan := flag.Bool("plan", false, "print the volume plan")
	showDot := flag.Bool("dot", false, "emit the assay DAG in Graphviz dot")
	lint := flag.Bool("lint", false, "run the volume-safety analyzer before compiling")
	wError := flag.Bool("Werror", false, "treat lint warnings as errors (implies -lint)")
	noManage := flag.Bool("no-manage", false, "skip the cascading/replication hierarchy")
	noVerify := flag.Bool("no-verify", false, "skip the post-codegen instruction-level verifier")
	noCertify := flag.Bool("no-certify", false, "skip the independent plan-certification pass")
	mutatePlan := flag.Bool("mutate-plan", false, "perturb the solved plan before certification (CI gate check)")
	outFile := flag.String("o", "", "write the AIS listing to this file instead of stdout")
	volFile := flag.String("voltab", "", "write the per-instruction volume table to this file (static assays only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fluidc [flags] assay.asy")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ep, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()

	if *lint || *wError {
		findings, err := analysis.Analyze(ep, cfg, analysis.Options{})
		if err != nil {
			fatal(err)
		}
		bad := false
		for _, d := range findings {
			if *wError && d.Severity == diag.Warning {
				d.Severity = diag.Error
			}
			bad = bad || d.Severity == diag.Error
			fmt.Fprintf(os.Stderr, "%s:%s\n", flag.Arg(0), d.Error())
		}
		if bad {
			os.Exit(1)
		}
	}

	// Volume management: statically-known assays go through the Fig. 6
	// hierarchy; assays with unknown volumes get compile-time Vnorms and
	// defer absolute assignment to the runtime (§3.5).
	g := ep.Graph
	var plan *core.Plan
	usedLP := false
	hasUnknown := false
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			hasUnknown = true
		}
	}
	// certifyPlan gates a solved plan behind the independent checker
	// (proof-carrying plans: the solver's output never reaches codegen
	// unverified). -mutate-plan seeds a perturbation first so CI can
	// prove the gate fires.
	certifyPlan := func(what string, p *core.Plan, avail core.Availability) {
		if *mutatePlan {
			for i, v := range p.EdgeVolume {
				if v > 0 {
					p.EdgeVolume[i] += 0.5
					break
				}
			}
		}
		if *noCertify {
			return
		}
		if err := certify.CheckPlan(p, cfg, avail); err != nil {
			fatal(fmt.Errorf("%s plan rejected: %w", what, err))
		}
	}
	switch {
	case hasUnknown:
		sp, err := core.NewStagedPlan(g, cfg)
		if err != nil {
			fatal(err)
		}
		done, err := sp.SolveStatic()
		if err != nil {
			fatal(err)
		}
		for _, i := range done {
			if sp.Plans[i] != nil && sp.Plans[i].Feasible() {
				certifyPlan(fmt.Sprintf("partition %d", i), sp.Plans[i], sp.PartAvailability(i, nil))
			}
		}
		fmt.Fprintf(os.Stderr, "assay has statically-unknown volumes: %d partitions, %d solvable at compile time\n",
			sp.NumParts(), len(done))
	case *noManage:
		plan, err = core.DAGSolve(g, cfg, nil)
		if err != nil {
			fatal(err)
		}
		if !plan.Feasible() {
			fmt.Fprintf(os.Stderr, "warning: DAGSolve underflows (%d); rerun without -no-manage\n", len(plan.Underflows))
		} else {
			certifyPlan("unmanaged", plan, nil)
		}
	default:
		res, err := core.Manage(g, cfg, core.ManageOptions{})
		if errors.Is(err, core.ErrUnmanageable) || errors.Is(err, core.ErrResourceLimit) {
			fatal(fmt.Errorf("%w\ntrace:\n%s", err, traceText(res)))
		} else if err != nil {
			fatal(err)
		}
		g = res.Graph
		plan = res.Plan
		usedLP = res.UsedLP
		certifyPlan("managed", plan, core.StaticAvailability(cfg))
		for _, tr := range res.Transforms {
			fmt.Fprintf(os.Stderr, "applied %s\n", tr)
		}
	}

	if *showDot {
		fmt.Print(g.DOT(ep.Name))
		return
	}
	// LP plans may leave excess in units; disable storage-less forwarding
	// for them (see codegen.Config.NoForwarding).
	cg, err := codegen.Generate(ep, g, codegen.Config{NoForwarding: usedLP})
	if err != nil {
		fatal(err)
	}
	var tab ais.VolumeTable
	if plan != nil {
		tab, err = cg.VolumeTable(func(edge int) (float64, bool) {
			if edge < 0 || edge >= len(plan.EdgeVolume) {
				return 0, false
			}
			return plan.EdgeVolume[edge], true
		})
		if err != nil {
			fatal(err)
		}
	}

	if !*noVerify {
		opts := aisverify.Options{Volumes: tab, UnknownVolumes: plan == nil}
		for name := range codegen.DryInit(ep) {
			opts.DefinedRegs = append(opts.DefinedRegs, name)
		}
		if plan != nil {
			opts.NodeVolume = aquacore.PlanSource{Plan: plan}.NodeVolume
		}
		findings := aisverify.Verify(cg.Prog, opts)
		for _, d := range findings {
			fmt.Fprintf(os.Stderr, "aisverify: %s\n", d.Error())
		}
		if findings.HasErrors() {
			os.Exit(1)
		}
	}

	listing := cg.Prog.String()
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(listing), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(listing)
	}
	if *volFile != "" {
		if plan == nil {
			fatal(fmt.Errorf("-voltab requires a statically-solvable assay"))
		}
		if err := os.WriteFile(*volFile, []byte(tab.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *showPlan && plan != nil {
		fmt.Println()
		fmt.Print(plan)
	}
}

func traceText(res *core.ManageResult) string {
	if res == nil {
		return ""
	}
	out := ""
	for _, l := range res.Trace {
		out += "  " + l + "\n"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluidc:", err)
	os.Exit(1)
}
