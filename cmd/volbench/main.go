// Command volbench regenerates the paper's evaluation tables and figures
// (§4) on this reproduction. See DESIGN.md for the experiment index.
//
// Usage:
//
//	volbench [-experiment all|fig5|glucose|glycomics|enzyme|rounding|table2|scaling|lpablation|ilp|regen|robustness|margin-sweep|durability|replan|solver|storage-chaos|bounded|certify]
//	         [-full] [-sweep N] [-seeds N] [-json FILE] [-ilp-nodes N] [-ilp-time D]
//
// -experiment solver measures the raw planning throughput/latency
// baseline (plans/sec, p50/p99 per shipped assay and solver); with
// -json it also writes the machine-readable report (BENCH_solver.json
// at the repository root is the recorded trajectory).
//
// -experiment storage-chaos runs the E14 storage-fault matrix: one
// injected fault at every journal I/O site, asserting the trichotomy
// (clean / refused journal / bit-identical resume). Its table is
// deterministic; -json adds the journaling-overhead timing.
//
// -experiment bounded runs the E15 cancel-at-every-boundary matrix for
// the work-budget layer: every certified solver path and every shipped
// assay is cancelled at a sweep of charge/instruction boundaries,
// asserting the trichotomy (completed / clean typed cancel within
// bounded work / salvaged journal resumes bit-identically). The table
// is deterministic; -json adds cancellation-latency percentiles and the
// budget-polling overhead (BENCH_bounded.json at the repository root is
// the recorded trajectory).
//
// -experiment certify runs the E16 proof-carrying-plans mutation
// matrix: every single-field perturbation of every shipped plan (and of
// the replan fixture's live readings and instruction patches) must be
// killed by the certification layer with exactly one typed cause — a
// surviving mutant fails the run. The kill table is deterministic;
// -json adds the certify-vs-pipeline overhead (BENCH_certify.json at
// the repository root is the recorded trajectory).
//
// -full enables the long-running Enzyme10 LP solve in table2 (minutes and
// roughly a gigabyte of tableau, which is the paper's point).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aquavol/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	full := flag.Bool("full", false, "include the long Enzyme10 LP solve")
	sweep := flag.Int("sweep", 5, "max N for the EnzymeN scaling sweep")
	seeds := flag.Int("seeds", 5, "seeds per cell in the robustness Monte-Carlo sweep")
	jsonOut := flag.String("json", "", "write the solver experiment's machine-readable report to this file")
	ilpNodes := flag.Int("ilp-nodes", 0, "B&B node budget for the ilp experiment (0 = default 20000)")
	ilpTime := flag.Duration("ilp-time", 0, "wall-clock guard per ilp solve (0 = default 15s)")
	flag.Parse()
	ilpBounds := bench.ILPBounds{Nodes: *ilpNodes, Time: *ilpTime}

	var tables []*bench.Table
	switch *experiment {
	case "solver":
		t, report, err := bench.SolverBaseline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "solver baseline: %v\n", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		if *jsonOut != "" {
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
		}
	case "storage-chaos":
		t, report, err := bench.StorageChaos()
		if err != nil {
			fmt.Fprintf(os.Stderr, "storage chaos: %v\n", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		if *jsonOut != "" {
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
		}
	case "certify":
		t, report, err := bench.Certify()
		if err != nil {
			fmt.Fprintf(os.Stderr, "certify matrix: %v\n", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		if *jsonOut != "" {
			blob, err := bench.WriteCertifyReport(report)
			if err != nil {
				fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
		}
	case "bounded":
		t, report, err := bench.Bounded()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bounded execution: %v\n", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		if *jsonOut != "" {
			blob, err := bench.WriteBoundedReport(report)
			if err != nil {
				fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
		}
	case "all":
		tables = bench.All(*full, *sweep)
	case "fig5":
		tables = []*bench.Table{bench.Fig5()}
	case "glucose":
		tables = []*bench.Table{bench.Glucose()}
	case "glycomics":
		tables = []*bench.Table{bench.Glycomics()}
	case "enzyme":
		tables = []*bench.Table{bench.Enzyme()}
	case "rounding":
		tables = []*bench.Table{bench.Rounding()}
	case "table2":
		tables = []*bench.Table{bench.Table2(*full)}
	case "scaling":
		tables = []*bench.Table{bench.ScalingTable(*sweep)}
	case "lpablation":
		tables = []*bench.Table{bench.LPAblation()}
	case "ilp":
		tables = []*bench.Table{bench.ILP(ilpBounds)}
	case "regen":
		tables = []*bench.Table{bench.Regen()}
	case "ablations":
		tables = []*bench.Table{
			bench.CascadeDepth(), bench.ReplicaSweep(),
			bench.RegenStrategy(), bench.OutputSkewSweep(),
		}
	case "cascade-depth":
		tables = []*bench.Table{bench.CascadeDepth()}
	case "replica-sweep":
		tables = []*bench.Table{bench.ReplicaSweep()}
	case "regen-strategy":
		tables = []*bench.Table{bench.RegenStrategy()}
	case "output-skew":
		tables = []*bench.Table{bench.OutputSkewSweep()}
	case "robustness":
		tables = []*bench.Table{bench.Robustness(*seeds)}
	case "margin-sweep":
		tables = []*bench.Table{bench.MarginSweep()}
	case "durability":
		tables = []*bench.Table{bench.Durability()}
	case "replan":
		tables = []*bench.Table{bench.Replan(*seeds)}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t)
	}
}
