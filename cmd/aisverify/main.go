// Command aisverify is the instruction-level volume-safety verifier for
// compiled AIS listings — the artifact-level counterpart of cmd/fluidlint.
// It assembles each listing, runs internal/aisverify's abstract
// interpretation (per-vessel volume intervals, dry-register definedness,
// functional-unit port protocol), and reports findings with stable AIS0xx
// codes; assembler errors report as ASM0xx findings through the same
// channel.
//
// Usage:
//
//	aisverify [-json] [-Werror] [-voltab prog.vol] [-yield F] prog.ais...
//
// Findings print one per line as file:line:col: severity[CODE]: message.
// With -json a machine-readable array of findings is emitted instead.
// -voltab supplies the shipped per-instruction volume table (single
// listing only). The exit status is 1 if and only if any finding has
// error severity (after -Werror promotion), 2 on usage or I/O failure.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aquavol/internal/ais"
	"aquavol/internal/aisverify"
	"aquavol/internal/diag"
)

// record is the JSON shape of one finding, matching fluidlint's.
type record struct {
	File       string        `json:"file"`
	Line       int           `json:"line,omitempty"`
	Col        int           `json:"col,omitempty"`
	Severity   diag.Severity `json:"severity"`
	Code       string        `json:"code,omitempty"`
	Message    string        `json:"message"`
	Suggestion string        `json:"suggestion,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aisverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	wError := fs.Bool("Werror", false, "treat warnings as errors")
	volFile := fs.String("voltab", "", "per-instruction volume table for the listing")
	yield := fs.Float64("yield", 0, "separation effluent yield fraction (default 0.4)")
	unknown := fs.Bool("unknown-volumes", false, "volumes are assigned at run time (staged assays)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: aisverify [-json] [-Werror] [-voltab prog.vol] [-yield F] prog.ais...")
		return 2
	}
	if *volFile != "" && fs.NArg() != 1 {
		fmt.Fprintln(stderr, "aisverify: -voltab applies to a single listing")
		return 2
	}

	var tab ais.VolumeTable
	if *volFile != "" {
		vsrc, err := os.ReadFile(*volFile)
		if err != nil {
			fmt.Fprintln(stderr, "aisverify:", err)
			return 2
		}
		tab, err = ais.ParseVolumeTable(string(vsrc))
		if err != nil {
			fmt.Fprintln(stderr, "aisverify:", err)
			return 2
		}
	}

	type finding struct {
		file string
		d    diag.Diagnostic
	}
	var all []finding
	failed := false
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "aisverify:", err)
			return 2
		}
		var findings diag.List
		prog, err := ais.Assemble(string(src))
		if err != nil {
			// Assembler diagnostics are findings; anything else is I/O-grade.
			var dl diag.List
			if !errors.As(err, &dl) {
				fmt.Fprintln(stderr, "aisverify:", err)
				return 2
			}
			findings = dl
		} else {
			findings = aisverify.Verify(prog, aisverify.Options{
				Volumes:         tab,
				UnknownVolumes:  *unknown,
				SeparationYield: *yield,
			})
		}
		for _, d := range findings {
			if *wError && d.Severity == diag.Warning {
				d.Severity = diag.Error
			}
			if d.Severity == diag.Error {
				failed = true
			}
			all = append(all, finding{file: file, d: d})
		}
	}

	if *jsonOut {
		records := make([]record, 0, len(all))
		for _, f := range all {
			records = append(records, record{
				File: f.file, Line: f.d.Pos.Line, Col: f.d.Pos.Col,
				Severity: f.d.Severity, Code: f.d.Code,
				Message: f.d.Msg, Suggestion: f.d.Suggestion,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(stderr, "aisverify:", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Fprintf(stdout, "%s:%s\n", f.file, f.d.Error())
		}
	}
	if failed {
		return 1
	}
	return 0
}
