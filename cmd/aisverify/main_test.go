package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanListing = `input s1, ip1
move-abs mixer1, s1, 500
mix mixer1, 10
move sensor1, mixer1
sense.OD sensor1, r
halt
`

const ranOutListing = `input s1, ip1
move-abs mixer1, s2, 10
halt
`

// warnListing senses an empty chamber — a warning-only finding.
const warnListing = `sense.OD sensor1, r0
halt
`

const badAsmListing = `frobnicate s1, s2
halt
`

func runVerify(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	clean := writeFile(t, "clean.ais", cleanListing)
	bad := writeFile(t, "bad.ais", ranOutListing)
	warm := writeFile(t, "warm.ais", warnListing)

	if code, out, _ := runVerify(t, clean); code != 0 || out != "" {
		t.Errorf("clean listing: exit %d, output %q; want 0 and no findings", code, out)
	}
	if code, out, _ := runVerify(t, bad); code != 1 || !strings.Contains(out, "AIS001") {
		t.Errorf("ran-out listing: exit %d, output %q; want 1 with AIS001", code, out)
	}
	if code, out, _ := runVerify(t, warm); code != 0 || !strings.Contains(out, "AIS011") {
		t.Errorf("warning listing: exit %d, output %q; want 0 with AIS011", code, out)
	}
	if code, _, _ := runVerify(t, "-Werror", warm); code != 1 {
		t.Errorf("-Werror on warning listing: exit %d, want 1", code)
	}
	if code, _, _ := runVerify(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code, _, _ := runVerify(t, filepath.Join(t.TempDir(), "missing.ais")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

func TestAssemblerErrorsAreFindings(t *testing.T) {
	bad := writeFile(t, "bad.ais", badAsmListing)
	code, out, stderr := runVerify(t, bad)
	if code != 1 {
		t.Fatalf("exit %d (stderr %q), want 1", code, stderr)
	}
	if !strings.Contains(out, "ASM001") || !strings.Contains(out, "bad.ais:1:1") {
		t.Errorf("output %q; want positioned ASM001 finding", out)
	}
}

func TestJSONOutput(t *testing.T) {
	bad := writeFile(t, "bad.ais", ranOutListing)
	code, out, _ := runVerify(t, "-json", bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var records []record
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("invalid JSON %q: %v", out, err)
	}
	if len(records) == 0 || records[0].Code != "AIS001" || records[0].Line != 2 {
		t.Errorf("records = %+v; want AIS001 at line 2", records)
	}
}

func TestVoltabOption(t *testing.T) {
	// A planned 120 nl draw from a 100 nl reservoir only shows up when
	// the volume table is supplied.
	listing := writeFile(t, "prog.ais", "input s1, ip1\nmove mixer1, s1, 1\nhalt\n")
	tab := writeFile(t, "prog.vol", "aquavol-voltab v1\n1 120\n")
	if code, out, _ := runVerify(t, listing); code != 0 {
		t.Fatalf("without table: exit %d, output %q; want 0", code, out)
	}
	code, out, _ := runVerify(t, "-voltab", tab, listing)
	if code != 1 || !strings.Contains(out, "AIS001") {
		t.Errorf("with table: exit %d, output %q; want 1 with AIS001", code, out)
	}
	two := writeFile(t, "other.ais", cleanListing)
	if code, _, stderr := runVerify(t, "-voltab", tab, listing, two); code != 2 || !strings.Contains(stderr, "single listing") {
		t.Errorf("-voltab with two listings: exit %d, stderr %q; want 2", code, stderr)
	}
}
