// Command fluidlint is the standalone compile-time volume-safety linter:
// it parses, checks, and elaborates assay sources, then runs the
// internal/analysis passes (volume intervals, mix skew, dead fluid/waste,
// least-count divisibility) without invoking any solver or generating
// code.
//
// Usage:
//
//	fluidlint [-json] [-Werror] [-waste-threshold F] assay.asy...
//
// Findings print one per line as file:line:col: severity[CODE]: message;
// suggestion. With -json a machine-readable array of findings is emitted
// instead. The exit status is 1 if and only if any finding has error
// severity (after -Werror promotion), 2 on usage or I/O failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"aquavol/internal/analysis"
	"aquavol/internal/core"
	"aquavol/internal/diag"
)

// record is the JSON shape of one finding.
type record struct {
	File       string        `json:"file"`
	Line       int           `json:"line,omitempty"`
	Col        int           `json:"col,omitempty"`
	Severity   diag.Severity `json:"severity"`
	Code       string        `json:"code,omitempty"`
	Message    string        `json:"message"`
	Suggestion string        `json:"suggestion,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fluidlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	wError := fs.Bool("Werror", false, "treat warnings as errors")
	threshold := fs.Float64("waste-threshold", 0, "statically-discarded input fraction that triggers VOL021 (default 0.25)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: fluidlint [-json] [-Werror] [-waste-threshold F] assay.asy...")
		return 2
	}

	cfg := core.DefaultConfig()
	opts := analysis.Options{DiscardThreshold: *threshold}
	type finding struct {
		file string
		d    diag.Diagnostic
	}
	var all []finding
	failed := false
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "fluidlint:", err)
			return 2
		}
		findings, _, err := analysis.LintSource(string(src), cfg, opts)
		if err != nil {
			fmt.Fprintln(stderr, "fluidlint:", err)
			return 2
		}
		for _, d := range findings {
			if *wError && d.Severity == diag.Warning {
				d.Severity = diag.Error
			}
			if d.Severity == diag.Error {
				failed = true
			}
			all = append(all, finding{file: file, d: d})
		}
	}

	if *jsonOut {
		records := make([]record, 0, len(all))
		for _, f := range all {
			records = append(records, record{
				File: f.file, Line: f.d.Pos.Line, Col: f.d.Pos.Col,
				Severity: f.d.Severity, Code: f.d.Code,
				Message: f.d.Msg, Suggestion: f.d.Suggestion,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(stderr, "fluidlint:", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Fprintf(stdout, "%s:%s\n", f.file, f.d.Error())
		}
	}
	if failed {
		return 1
	}
	return 0
}
