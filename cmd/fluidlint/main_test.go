package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeAssay(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = `ASSAY clean START
fluid stock, buffer, dil, out;
VAR r[2];
dil = MIX stock AND buffer IN RATIOS 1:8 FOR 10;
SENSE OPTICAL dil INTO r[1];
out = MIX stock AND buffer IN RATIOS 1:4 FOR 10;
SENSE OPTICAL out INTO r[2];
END`

const errorSrc = `ASSAY hot START
NOEXCESS fluid toxin;
fluid water, d;
VAR r;
d = MIX toxin AND water IN RATIOS 1:1200 FOR 10;
SENSE OPTICAL d INTO r;
END`

// warnSrc draws warnings only: the 1:1200 ratio exceeds MaxSkew but is
// repairable by a depth-2 cascade, so nothing reaches error severity.
const warnSrc = `ASSAY warm START
fluid acid, water, d;
VAR r;
d = MIX acid AND water IN RATIOS 1:1200 FOR 10;
SENSE OPTICAL d INTO r;
END`

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	clean := writeAssay(t, "clean.asy", cleanSrc)
	hot := writeAssay(t, "hot.asy", errorSrc)
	warm := writeAssay(t, "warm.asy", warnSrc)

	if code, out, _ := runLint(t, clean); code != 0 || out != "" {
		t.Errorf("clean assay: exit %d, output %q; want 0 and no findings", code, out)
	}
	if code, out, _ := runLint(t, hot); code != 1 || out == "" {
		t.Errorf("uncascadable assay: exit %d, output %q; want 1 with findings", code, out)
	}
	// Warnings alone do not fail the build...
	if code, out, _ := runLint(t, warm); code != 0 || out == "" {
		t.Errorf("cascade-repairable assay: exit %d, output %q; want 0 with findings", code, out)
	}
	// ...unless promoted by -Werror.
	if code, _, _ := runLint(t, "-Werror", warm); code != 1 {
		t.Errorf("-Werror should promote warnings to exit 1")
	}
	if code, _, stderr := runLint(t); code != 2 || stderr == "" {
		t.Errorf("no arguments: exit %d; want 2 with usage on stderr", code)
	}
	if code, _, _ := runLint(t, filepath.Join(t.TempDir(), "missing.asy")); code != 2 {
		t.Errorf("missing file: want exit 2")
	}
}

func TestJSONOutput(t *testing.T) {
	hot := writeAssay(t, "hot.asy", errorSrc)
	code, out, stderr := runLint(t, "-json", hot)
	if code != 1 {
		t.Fatalf("exit %d, stderr %q; want 1", code, stderr)
	}
	var records []record
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(records) == 0 {
		t.Fatal("no findings in JSON output")
	}
	sawError := false
	for _, r := range records {
		if r.File != hot {
			t.Errorf("record file = %q, want %q", r.File, hot)
		}
		if r.Line == 0 || r.Code == "" || r.Message == "" {
			t.Errorf("incomplete record: %+v", r)
		}
		if r.Severity.String() == "error" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("exit 1 but no error-severity record in JSON output")
	}

	// The clean assay still emits a well-formed (empty) array.
	clean := writeAssay(t, "clean.asy", cleanSrc)
	if code, out, _ := runLint(t, "-json", clean); code != 0 {
		t.Errorf("clean assay: exit %d", code)
	} else if err := json.Unmarshal([]byte(out), &records); err != nil || len(records) != 0 {
		t.Errorf("clean assay JSON = %q (err %v); want empty array", out, err)
	}
}
