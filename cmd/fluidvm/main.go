// Command fluidvm compiles an assay and executes it on the AquaCore PLoC
// simulator with the runtime volume manager in the loop: static plans are
// applied directly; assays with unknown volumes are re-planned partition
// by partition as the simulated separations report their measured outputs
// (§3.5).
//
// Usage:
//
//	fluidvm [-yield F] [-trace] [-faults PROFILE] [-seed N] [-margin F]
//	        [-recover] [-replan] [-retries N] [-journal PATH]
//	        [-snapshot-every N] [-crash-at N] [-budget N] [-deadline D]
//	        assay.asy
//	fluidvm -ais prog.ais -voltab prog.vol       # run a shipped listing
//	fluidvm -resume run.aqj assay.asy            # continue a crashed run
//
// -trace streams one line per executed instruction to stderr with the
// pre→post volume of every vessel the instruction touches — the concrete
// replay channel for aisverify findings.
//
// -faults injects imperfect fluidics: a preset (none, mild, moderate,
// harsh) or a comma list like "jitter=0.02,dead=0.05,evap=5e-5,
// noise=0.02,fail=0.01". The run is reproducible from -seed. -margin
// over-provisions every planned volume by (1+F). -recover wraps execution
// in the recovery runtime (bounded retries, capped by -retries per
// instruction, plus backward-slice regeneration of depleted fluids);
// shipped listings (-ais) recover with retries only, having no DAG.
// -replan (implies -recover) additionally lets a volume shortfall
// re-solve the residual DAG around the live vessel volumes and rescale
// the remaining instructions, consuming no fresh reagent; regeneration
// stays the fallback. Replan counts appear in the recovery summary line
// and, under -trace, each repair event streams to stderr as it happens.
//
// -journal makes the run durable: a write-ahead log of execution records
// and periodic machine snapshots (cadence -snapshot-every boundaries).
// Creating a journal over an existing non-empty one is refused — it may
// be the only crash evidence of an interrupted run — unless
// -force-journal is given. -resume restores the newest usable snapshot
// from such a journal and continues, falling back to earlier snapshots
// (and ultimately a restart) when the newest is unrestorable; the run
// configuration (profile, seed, margin, yield, retry budget, cadence) is
// taken from the journal's opening record, not from flags, and the
// recompiled program must hash-match the journaled one. Because
// execution is deterministic, a resumed run finishes bit-identical to
// one that was never interrupted. -crash-at N simulates a process kill
// after instruction boundary N (chaos testing). All three imply -recover.
//
// -fsfaults injects storage faults underneath the journal (chaos
// testing): either a deterministic strike list like "sync@3:lying" or
// "write@5:enospc:sticky" (see internal/vfs.ParseStrikes), or a
// rate-based profile like "write=0.01,sync=0.005" drawn from the
// -fsfault-seed PRNG. The fluidic machine is untouched — only the
// journal's filesystem misbehaves.
//
// -budget N bounds the run to N work units (planning charges solver
// pivots and DAG node visits, execution one unit per instruction);
// -deadline D adds a wall-clock bound. Either trip stops the run
// cooperatively with a typed cause and exit code 5. Under -journal a
// cancelled run fail-stops exactly like a crash — the journal keeps no
// outcome record and -resume completes it bit-identically (budgets are
// resource guards, never replayed state). Both flags also bound a
// -resume itself.
//
// Every solved plan is certified by the independent checker
// (internal/certify) before a single instruction executes: the static
// plan at build time, each staged partition as it is solved (including
// at run time, from measurements), and every residual replan before its
// patches apply. A certification failure refuses to run with exit code
// 6 and, under -journal, leaves no outcome record. Journaled runs
// record the plan's certificate hash in the begin record; -resume
// recomputes the hash from the re-derived plan and refuses a mismatch
// with the same exit code — the journal's plan is not the plan that
// was certified. -no-certify skips all certification (and the resume
// hash check).
//
// Exit codes: 0 completed, 1 error, 2 completed-degraded (unrepaired
// faults), 3 aborted, 4 resume failure, 5 cancelled/deadline/budget
// exceeded, 6 plan certification failure, 64 usage.
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/budget"
	"aquavol/internal/certify"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	"aquavol/internal/lang"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// Structured exit codes: scripts branch on the terminal status without
// parsing output. Usage errors exit 64 (BSD EX_USAGE) so 2 can mean
// degraded-but-complete.
const (
	exitCompleted    = 0
	exitError        = 1
	exitDegraded     = 2
	exitAborted      = 3
	exitResumeFailed = 4
	exitCancelled    = 5
	exitCertFailed   = 6
	exitUsage        = 64
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fluidvm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	yield := fs.Float64("yield", 0.4, "separation effluent yield fraction")
	trace := fs.Bool("trace", false, "stream executed instructions with pre/post vessel volumes")
	aisFile := fs.String("ais", "", "execute a textual AIS listing (requires -voltab)")
	volFile := fs.String("voltab", "", "per-instruction volume table for -ais")
	faultSpec := fs.String("faults", "none", "fault profile: preset name or k=v list")
	seed := fs.Int64("seed", 0, "fault-injection PRNG seed")
	margin := fs.Float64("margin", 0, "safety margin: over-provision planned volumes by (1+F)")
	rec := fs.Bool("recover", false, "enable the recovery runtime (retry + regeneration)")
	replan := fs.Bool("replan", false, "enable adaptive replanning on shortfalls (implies -recover)")
	retries := fs.Int("retries", 3, "retry budget per failed instruction under -recover")
	journalPath := fs.String("journal", "", "write a durable-execution journal to PATH (implies -recover)")
	resumePath := fs.String("resume", "", "resume a crashed run from its journal (implies -recover)")
	crashAt := fs.Int("crash-at", -1, "simulate a process kill after instruction boundary N (implies -recover)")
	snapEvery := fs.Int("snapshot-every", 8, "journal snapshot cadence in instruction boundaries")
	forceJournal := fs.Bool("force-journal", false, "overwrite an existing non-empty journal at -journal PATH")
	fsFaults := fs.String("fsfaults", "", "inject storage faults under the journal: strike list (op@N[:mod]) or rate profile (k=v)")
	fsFaultSeed := fs.Int64("fsfault-seed", 0, "PRNG seed for rate-based -fsfaults profiles")
	budgetN := fs.Int64("budget", 0, "bound the run to N work units (0 = unlimited); tripping exits 5")
	deadline := fs.Duration("deadline", 0, "wall-clock deadline for the whole run (0 = none); tripping exits 5")
	noCertify := fs.Bool("no-certify", false, "skip independent plan certification (and the resume hash check)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	// One meter bounds the whole invocation — planning, execution, and
	// resume alike. Nil when unbounded, so the default path charges nothing.
	var meter *budget.Meter
	if *budgetN > 0 || *deadline > 0 {
		meter = budget.New(*budgetN).WithDeadline(*deadline)
	}
	fsys, err := buildFS(*fsFaults, *fsFaultSeed)
	if err != nil {
		return fail(stderr, err)
	}
	var traceFn func(aquacore.TraceEntry)
	var eventFn func(aquacore.Event)
	if *trace {
		traceFn = traceTo(stderr)
		eventFn = eventTo(stderr)
	}

	if *resumePath != "" {
		return doResume(fsys, *resumePath, fs.Args(), *aisFile, *volFile, *noCertify, meter, traceFn, eventFn, stdout, stderr)
	}

	prof, err := faults.ParseProfile(*faultSpec)
	if err != nil {
		return fail(stderr, err)
	}
	var inj *faults.Injector
	if prof.Enabled() {
		inj = faults.New(prof, *seed)
	}
	doRecover := *rec || *replan || *journalPath != "" || *crashAt >= 0
	ropts := recovery.Options{RetriesPerInstr: *retries, SnapshotEvery: *snapEvery, EnableReplan: *replan, Budget: meter, NoCertify: *noCertify}
	if *crashAt >= 0 {
		ropts.Crash = faults.CrashAt(*crashAt)
	}

	// Build the program and machine.
	var (
		prog     *ais.Program
		comp     *recovery.Compiled
		m        *aquacore.Machine
		name     string
		certHash uint32
	)
	if *aisFile != "" {
		name = *aisFile
		prog, m, err = buildShipped(*aisFile, *volFile, *yield, meter, traceFn, eventFn, inj)
	} else {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: fluidvm [flags] assay.asy")
			return exitUsage
		}
		name = fs.Arg(0)
		var src []byte
		if src, err = os.ReadFile(name); err == nil {
			prog, comp, m, certHash, err = buildAssay(string(src), *yield, *margin, *noCertify, meter, traceFn, eventFn, inj)
		}
	}
	if err != nil {
		// A budget/deadline trip during planning (vnorm sweeps, LP pivots,
		// ILP nodes) is a bounded stop, not a compile error.
		if budget.IsStop(err) {
			fmt.Fprintln(stderr, "fluidvm:", err)
			return exitCancelled
		}
		// A certification failure is a refused plan, not a broken build:
		// its own exit code so scripts can tell "the checker said no"
		// from a compile error.
		if errors.Is(err, certify.ErrCertificate) {
			fmt.Fprintln(stderr, "fluidvm:", err)
			return exitCertFailed
		}
		return fail(stderr, err)
	}

	if *journalPath != "" {
		jw, jf, jerr := journal.Create(fsys, *journalPath, *forceJournal)
		if jerr != nil {
			return fail(stderr, jerr)
		}
		defer jf.Close()
		if jerr := jw.Append(&journal.Record{Kind: journal.KindBegin, Begin: &journal.Begin{
			Program: name,
			Hash:    crc32.ChecksumIEEE([]byte(prog.String())),
			Instrs:  len(prog.Instrs),
			Profile: prof, Seed: *seed,
			Margin: *margin, Yield: *yield,
			Retries: *retries, SnapshotEvery: *snapEvery,
			Replan:   *replan,
			CertHash: certHash,
		}}); jerr != nil {
			return fail(stderr, jerr)
		}
		ropts.Journal = jw
	}

	if doRecover {
		return finish(recovery.Run(m, prog, comp, ropts), stdout, stderr)
	}
	res, err := m.Run(prog)
	if err != nil {
		if budget.IsStop(err) {
			fmt.Fprintln(stderr, "fluidvm:", err)
			return exitCancelled
		}
		return fail(stderr, err)
	}
	report(stdout, res)
	return exitCompleted
}

// buildFS constructs the journal's filesystem from the -fsfaults spec:
// empty means the real OS, "@" terms select deterministic strikes, "="
// terms a rate-based disk profile drawn from seed. Both fault shapes can
// be combined in one comma list.
func buildFS(spec string, seed int64) (vfs.FS, error) {
	if spec == "" {
		return vfs.OS{}, nil
	}
	var strikeTerms, rateTerms []string
	for _, term := range strings.Split(spec, ",") {
		switch {
		case strings.TrimSpace(term) == "":
		case strings.Contains(term, "@"):
			strikeTerms = append(strikeTerms, term)
		default:
			rateTerms = append(rateTerms, term)
		}
	}
	strikes, err := vfs.ParseStrikes(strings.Join(strikeTerms, ","))
	if err != nil {
		return nil, err
	}
	var disk *faults.DiskInjector
	if len(rateTerms) > 0 {
		p, err := faults.ParseDiskProfile(strings.Join(rateTerms, ","))
		if err != nil {
			return nil, err
		}
		if p.Enabled() {
			disk = faults.NewDisk(p, seed)
		}
	}
	return vfs.NewFaulty(vfs.OS{}, strikes, disk), nil
}

// doResume restores a crashed journaled run and continues it to
// completion, appending to the recovered journal. Configuration comes
// from the journal's begin record; only the program source (and -trace)
// come from the command line. The snapshot ladder runs newest-first:
// when the newest snapshot is unrestorable (poisoned contents behind a
// valid CRC) the resume falls back to earlier ones, and ultimately to a
// deterministic restart. Notices go to stderr so stdout stays
// byte-identical to the uninterrupted run's.
func doResume(fsys vfs.FS, path string, args []string, aisFile, volFile string, noCertify bool, meter *budget.Meter,
	traceFn func(aquacore.TraceEntry), eventFn func(aquacore.Event), stdout, stderr io.Writer) int {
	resumeFail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "fluidvm: resume: "+format+"\n", a...)
		return exitResumeFailed
	}
	recs, tail, w, f, err := journal.OpenAppend(fsys, path)
	if err != nil {
		return resumeFail("%v", err)
	}
	defer f.Close()
	if tail.Truncated {
		fmt.Fprintf(stderr, "fluidvm: resume: recovered journal tail: %s (kept %d good bytes)\n",
			tail.Reason, tail.GoodBytes)
	}
	if recs[0].Kind != journal.KindBegin {
		return resumeFail("journal does not start with a begin record")
	}
	begin := recs[0].Begin
	if last := recs[len(recs)-1]; last.Kind == journal.KindOutcome {
		return resumeFail("journal is already closed: run %s after %d boundaries",
			last.Outcome.Status, last.Outcome.Boundaries)
	}

	// Rebuild the run exactly as the original invocation configured it.
	// Each ladder rung needs a fresh machine (Restore refuses a used one),
	// so construction is a closure; the program and compile artifacts are
	// deterministic and come from the first build.
	var (
		prog     *ais.Program
		comp     *recovery.Compiled
		certHash uint32
	)
	newMachine := func() (*aquacore.Machine, error) {
		var inj *faults.Injector
		if begin.Profile.Enabled() {
			inj = faults.New(begin.Profile, begin.Seed)
		}
		if aisFile != "" {
			p, m, err := buildShipped(aisFile, volFile, begin.Yield, meter, traceFn, eventFn, inj)
			prog = p
			return m, err
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		p, c, m, h, err := buildAssay(string(src), begin.Yield, begin.Margin, noCertify, meter, traceFn, eventFn, inj)
		prog, comp, certHash = p, c, h
		return m, err
	}
	if aisFile == "" && len(args) != 1 {
		fmt.Fprintln(stderr, "usage: fluidvm -resume run.aqj assay.asy")
		return exitUsage
	}
	firstMachine, err := newMachine()
	if err != nil {
		if errors.Is(err, certify.ErrCertificate) {
			fmt.Fprintln(stderr, "fluidvm: resume:", err)
			return exitCertFailed
		}
		return fail(stderr, err)
	}
	if h := crc32.ChecksumIEEE([]byte(prog.String())); h != begin.Hash || len(prog.Instrs) != begin.Instrs {
		return resumeFail("journal was recorded for a different program (journaled %08x/%d instrs, recompiled %08x/%d)",
			begin.Hash, begin.Instrs, h, len(prog.Instrs))
	}
	// Re-verify the certificate: the re-derived (and freshly re-certified)
	// plan must hash to exactly what the original run certified and
	// journaled. A mismatch means the journal would replay volumes from a
	// plan nobody certified — refuse before touching the machine, leaving
	// no outcome record so the journal stays crash-evidence.
	if !noCertify && begin.CertHash != 0 {
		if err := certify.VerifyHash(certHash, begin.CertHash); err != nil {
			fmt.Fprintln(stderr, "fluidvm: resume:", err)
			return exitCertFailed
		}
	}

	// The budget meter is per-invocation configuration, never journaled
	// state: a resume is bounded only by the flags of THIS invocation.
	ropts := recovery.Options{
		RetriesPerInstr: begin.Retries,
		SnapshotEvery:   begin.SnapshotEvery,
		EnableReplan:    begin.Replan,
		Journal:         w,
		Budget:          meter,
		NoCertify:       noCertify,
	}
	snaps := recovery.Snapshots(recs)
	if len(snaps) == 0 {
		// Death before the first snapshot frame landed: nothing to
		// restore, so the resume is a fresh deterministic run.
		fmt.Fprintln(stderr, "fluidvm: resume: no snapshot in journal; restarting from the beginning")
		return finish(recovery.Run(firstMachine, prog, comp, ropts), stdout, stderr)
	}
	out, _, err := recovery.ResumeFallback(newMachine, prog, comp, ropts, snaps,
		func(s string) { fmt.Fprintf(stderr, "fluidvm: resume: %s\n", s) })
	if err != nil {
		return resumeFail("%v", err)
	}
	return finish(out, stdout, stderr)
}

// buildAssay compiles assay source and constructs its machine, mirroring
// the planner/codegen decisions of a direct run so a resume rebuilds the
// identical program. Unless noCertify, every solved plan passes the
// independent checker before the machine is built — static plans here,
// staged partitions through the source's certification hook (including
// those solved later from measurements) — and the returned certHash
// pins the certified static plan (0 for staged assays, which have no
// single static plan to pin).
func buildAssay(src string, yield, margin float64, noCertify bool, meter *budget.Meter, traceFn func(aquacore.TraceEntry),
	eventFn func(aquacore.Event), inj *faults.Injector) (*ais.Program, *recovery.Compiled, *aquacore.Machine, uint32, error) {
	ep, err := lang.Compile(src)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.SafetyMargin = margin
	cfg.Budget = meter
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, 0, err
	}

	g := ep.Graph
	hasUnknown := false
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			hasUnknown = true
		}
	}
	var source aquacore.VolumeSource
	usedLP := false
	var certHash uint32
	if hasUnknown {
		sp, err := core.NewStagedPlan(g, cfg)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		var hook aquacore.CertifyPart
		if !noCertify {
			hook = func(part int, plan *core.Plan, avail core.Availability) error {
				return certify.CheckPlan(plan, cfg, avail)
			}
		}
		ss, err := aquacore.NewStagedSource(sp, hook)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		source = ss
		// Per-part solves may fall back to LP at run time; be
		// conservative about unit residue.
		usedLP = true
	} else {
		res, err := core.Manage(g, cfg, core.ManageOptions{})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if !noCertify {
			if err := certify.CheckPlan(res.Plan, cfg, core.StaticAvailability(cfg)); err != nil {
				return nil, nil, nil, 0, fmt.Errorf("managed plan rejected: %w", err)
			}
			certHash = certify.PlanHash(res.Plan)
		}
		g = res.Graph
		source = aquacore.PlanSource{Plan: res.Plan}
		usedLP = res.UsedLP
	}

	// Forwarding is unsafe whenever production can exceed consumption:
	// LP plans (no flow conservation) and any positive safety margin.
	cg, err := codegen.Generate(ep, g, codegen.Config{NoForwarding: usedLP || margin > 0})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	m := aquacore.New(aquacore.Config{SeparationYield: yield, Trace: traceFn, EventTrace: eventFn, Faults: inj, Budget: meter}, g, source)
	m.SetDry(codegen.DryInit(ep))
	comp := &recovery.Compiled{Graph: g, Clusters: cg.Clusters, VesselOf: cg.VesselOf}
	return cg.Prog, comp, m, certHash, nil
}

// buildShipped assembles a compiled (listing, volume table) pair — the
// artifact fluidc -o/-voltab produces — with no source or DAG available.
// Recovery is retry-only here: regeneration needs the DAG and cluster map
// that only a fresh compile carries.
func buildShipped(aisFile, volFile string, yield float64, meter *budget.Meter, traceFn func(aquacore.TraceEntry),
	eventFn func(aquacore.Event), inj *faults.Injector) (*ais.Program, *aquacore.Machine, error) {
	src, err := os.ReadFile(aisFile)
	if err != nil {
		return nil, nil, err
	}
	prog, err := ais.Assemble(string(src))
	if err != nil {
		return nil, nil, err
	}
	m := aquacore.New(aquacore.Config{SeparationYield: yield, Trace: traceFn, EventTrace: eventFn, Faults: inj, Budget: meter}, nil, nil)
	if volFile != "" {
		vsrc, err := os.ReadFile(volFile)
		if err != nil {
			return nil, nil, err
		}
		tab, err := ais.ParseVolumeTable(string(vsrc))
		if err != nil {
			return nil, nil, err
		}
		m.SetVolumeTable(tab)
	}
	return prog, m, nil
}

// finish renders a recovered outcome and maps its status to an exit code.
func finish(out *recovery.Outcome, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "recovery: %s\n", out.Summary())
	report(stdout, out.Result)
	switch out.Status {
	case recovery.Completed:
		return exitCompleted
	case recovery.CompletedDegraded:
		return exitDegraded
	default:
		fmt.Fprintln(stderr, "fluidvm:", out.Err)
		// Budget/deadline/cancellation stops get their own exit code so
		// scripts can tell a bounded stop from a genuine abort. errors.Is
		// sees the typed cause through the ErrAborted wrap.
		if budget.IsStop(out.Err) {
			return exitCancelled
		}
		return exitAborted
	}
}

func report(w io.Writer, res *aquacore.Result) {
	fmt.Fprintf(w, "executed %d wet + %d dry instructions\n", res.WetInstrs, res.DryInstrs)
	fmt.Fprintf(w, "fluidic time %.1f s, electronic time %.3g s\n", res.WetSeconds, res.DrySeconds)
	if res.Clean() {
		fmt.Fprintln(w, "no underflow/overflow/ran-out events")
	} else {
		fmt.Fprintf(w, "%d volume events:\n", len(res.Events))
		for _, e := range res.Events {
			fmt.Fprintln(w, " ", e)
		}
	}
	if res.VolumeDrift != nil {
		fmt.Fprintf(w, "injected-fault loss %.4g nl; expected-vs-actual drift:\n", res.FaultLoss())
		names := make([]string, 0, len(res.VolumeDrift))
		for name := range res.VolumeDrift {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if d := res.VolumeDrift[name]; d != 0 {
				fmt.Fprintf(w, "  %s %+.4g nl\n", name, d)
			}
		}
	}
	if len(res.Dry) > 0 {
		fmt.Fprintln(w, "sensed/dry values:")
		keys := make([]string, 0, len(res.Dry))
		for k := range res.Dry {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s = %.4g\n", k, res.Dry[k])
		}
	}
	for _, o := range res.Outputs {
		fmt.Fprintf(w, "output %s: %.3f nl\n", o.Port, o.Volume)
	}
}

// traceTo renders one executed instruction as a stderr line:
//
//	step 4 pc 4: move-abs mixer1, s1, 300 | s1 100→70 mixer1 0→30
func traceTo(w io.Writer) func(aquacore.TraceEntry) {
	return func(e aquacore.TraceEntry) {
		fmt.Fprintf(w, "step %d pc %d: %s", e.Step, e.PC, e.Instr)
		for i, d := range e.Vessels {
			if i == 0 {
				fmt.Fprint(w, " |")
			}
			fmt.Fprintf(w, " %s %.4g→%.4g", d.Name, d.Pre, d.Post)
		}
		fmt.Fprintln(w)
	}
}

// eventTo streams each recorded machine event — faults, repairs,
// replans — to stderr as it happens, interleaved with the instruction
// trace.
func eventTo(w io.Writer) func(aquacore.Event) {
	return func(e aquacore.Event) {
		fmt.Fprintln(w, "event:", e)
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "fluidvm:", err)
	return exitError
}
