// Command fluidvm compiles an assay and executes it on the AquaCore PLoC
// simulator with the runtime volume manager in the loop: static plans are
// applied directly; assays with unknown volumes are re-planned partition
// by partition as the simulated separations report their measured outputs
// (§3.5).
//
// Usage:
//
//	fluidvm [-yield F] [-trace] [-faults PROFILE] [-seed N] [-margin F]
//	        [-recover] [-retries N] assay.asy
//	fluidvm -ais prog.ais -voltab prog.vol       # run a shipped listing
//
// -trace streams one line per executed instruction to stderr with the
// pre→post volume of every vessel the instruction touches — the concrete
// replay channel for aisverify findings.
//
// -faults injects imperfect fluidics: a preset (none, mild, moderate,
// harsh) or a comma list like "jitter=0.02,dead=0.05,evap=5e-5,
// noise=0.02,fail=0.01". The run is reproducible from -seed. -margin
// over-provisions every planned volume by (1+F). -recover wraps execution
// in the recovery runtime (bounded retries, capped by -retries per
// instruction, plus backward-slice regeneration of depleted fluids);
// shipped listings (-ais) recover with retries only, having no DAG.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/faults"
	"aquavol/internal/lang"
	recovery "aquavol/internal/recover"
)

func main() {
	yield := flag.Float64("yield", 0.4, "separation effluent yield fraction")
	trace := flag.Bool("trace", false, "stream executed instructions with pre/post vessel volumes")
	aisFile := flag.String("ais", "", "execute a textual AIS listing (requires -voltab)")
	volFile := flag.String("voltab", "", "per-instruction volume table for -ais")
	faultSpec := flag.String("faults", "none", "fault profile: preset name or k=v list")
	seed := flag.Int64("seed", 0, "fault-injection PRNG seed")
	margin := flag.Float64("margin", 0, "safety margin: over-provision planned volumes by (1+F)")
	rec := flag.Bool("recover", false, "enable the recovery runtime (retry + regeneration)")
	retries := flag.Int("retries", 3, "retry budget per failed instruction under -recover")
	flag.Parse()
	var traceFn func(aquacore.TraceEntry)
	if *trace {
		traceFn = printTrace
	}
	prof, err := faults.ParseProfile(*faultSpec)
	if err != nil {
		fatal(err)
	}
	var inj *faults.Injector
	if prof.Enabled() {
		inj = faults.New(prof, *seed)
	}
	ropts := recovery.Options{RetriesPerInstr: *retries}
	if *aisFile != "" {
		runShipped(*aisFile, *volFile, *yield, traceFn, inj, *rec, ropts)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fluidvm [flags] assay.asy")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ep, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SafetyMargin = *margin
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	g := ep.Graph
	hasUnknown := false
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			hasUnknown = true
		}
	}
	var source aquacore.VolumeSource
	usedLP := false
	if hasUnknown {
		sp, err := core.NewStagedPlan(g, cfg)
		if err != nil {
			fatal(err)
		}
		ss, err := aquacore.NewStagedSource(sp)
		if err != nil {
			fatal(err)
		}
		source = ss
		// Per-part solves may fall back to LP at run time; be
		// conservative about unit residue.
		usedLP = true
	} else {
		res, err := core.Manage(g, cfg, core.ManageOptions{})
		if err != nil {
			fatal(err)
		}
		g = res.Graph
		source = aquacore.PlanSource{Plan: res.Plan}
		usedLP = res.UsedLP
	}

	// Forwarding is unsafe whenever production can exceed consumption:
	// LP plans (no flow conservation) and any positive safety margin.
	cg, err := codegen.Generate(ep, g, codegen.Config{NoForwarding: usedLP || *margin > 0})
	if err != nil {
		fatal(err)
	}
	m := aquacore.New(aquacore.Config{SeparationYield: *yield, Trace: traceFn, Faults: inj}, g, source)
	m.SetDry(codegen.DryInit(ep))
	if *rec {
		out := recovery.Run(m, cg.Prog, g, cg.Clusters, ropts)
		fmt.Printf("recovery: %s\n", out.Summary())
		report(out.Result)
		if out.Err != nil {
			fatal(out.Err)
		}
		return
	}
	res, err := m.Run(cg.Prog)
	if err != nil {
		fatal(err)
	}

	report(res)
}

// runShipped executes a compiled (listing, volume table) pair — the
// artifact fluidc -o/-voltab produces — with no source or DAG available.
// Recovery is retry-only here: regeneration needs the DAG and cluster map
// that only a fresh compile carries.
func runShipped(aisFile, volFile string, yield float64, traceFn func(aquacore.TraceEntry),
	inj *faults.Injector, rec bool, ropts recovery.Options) {
	src, err := os.ReadFile(aisFile)
	if err != nil {
		fatal(err)
	}
	prog, err := ais.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	m := aquacore.New(aquacore.Config{SeparationYield: yield, Trace: traceFn, Faults: inj}, nil, nil)
	if volFile != "" {
		vsrc, err := os.ReadFile(volFile)
		if err != nil {
			fatal(err)
		}
		tab, err := ais.ParseVolumeTable(string(vsrc))
		if err != nil {
			fatal(err)
		}
		m.SetVolumeTable(tab)
	}
	if rec {
		out := recovery.Run(m, prog, (*dag.Graph)(nil), nil, ropts)
		fmt.Printf("recovery: %s\n", out.Summary())
		report(out.Result)
		if out.Err != nil {
			fatal(out.Err)
		}
		return
	}
	res, err := m.Run(prog)
	if err != nil {
		fatal(err)
	}
	report(res)
}

func report(res *aquacore.Result) {
	fmt.Printf("executed %d wet + %d dry instructions\n", res.WetInstrs, res.DryInstrs)
	fmt.Printf("fluidic time %.1f s, electronic time %.3g s\n", res.WetSeconds, res.DrySeconds)
	if res.Clean() {
		fmt.Println("no underflow/overflow/ran-out events")
	} else {
		fmt.Printf("%d volume events:\n", len(res.Events))
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	if res.VolumeDrift != nil {
		fmt.Printf("injected-fault loss %.4g nl; expected-vs-actual drift:\n", res.FaultLoss())
		names := make([]string, 0, len(res.VolumeDrift))
		for name := range res.VolumeDrift {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if d := res.VolumeDrift[name]; d != 0 {
				fmt.Printf("  %s %+.4g nl\n", name, d)
			}
		}
	}
	if len(res.Dry) > 0 {
		fmt.Println("sensed/dry values:")
		keys := make([]string, 0, len(res.Dry))
		for k := range res.Dry {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %.4g\n", k, res.Dry[k])
		}
	}
	for _, o := range res.Outputs {
		fmt.Printf("output %s: %.3f nl\n", o.Port, o.Volume)
	}
}

// printTrace renders one executed instruction as a stderr line:
//
//	step 4 pc 4: move-abs mixer1, s1, 300 | s1 100→70 mixer1 0→30
func printTrace(e aquacore.TraceEntry) {
	fmt.Fprintf(os.Stderr, "step %d pc %d: %s", e.Step, e.PC, e.Instr)
	for i, d := range e.Vessels {
		if i == 0 {
			fmt.Fprint(os.Stderr, " |")
		}
		fmt.Fprintf(os.Stderr, " %s %.4g→%.4g", d.Name, d.Pre, d.Post)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluidvm:", err)
	os.Exit(1)
}
