package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquavol/internal/journal"
	"aquavol/internal/vfs"
)

const glucose = "../../testdata/glucose.asy"

// runCLI invokes the command in-process and returns (exit, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// Exit codes are the scripting contract: each terminal status maps to a
// distinct, documented code.
func TestExitCodes(t *testing.T) {
	// 0: clean run.
	if code, _, errw := runCLI(t, glucose); code != exitCompleted {
		t.Fatalf("clean run exit %d, want %d (stderr: %s)", code, exitCompleted, errw)
	}
	// 2: completed degraded — every FU attempt fails, budget exhausted.
	code, out, _ := runCLI(t, "-faults", "fail=1", "-seed", "1", "-recover", "-retries", "1", glucose)
	if code != exitDegraded {
		t.Fatalf("degraded run exit %d, want %d", code, exitDegraded)
	}
	if !strings.Contains(out, "completed-degraded") {
		t.Fatalf("degraded summary missing: %s", out)
	}
	// 3: aborted (simulated crash).
	dir := t.TempDir()
	if code, _, _ := runCLI(t, "-journal", filepath.Join(dir, "c.aqj"), "-crash-at", "2", glucose); code != exitAborted {
		t.Fatalf("crashed run exit %d, want %d", code, exitAborted)
	}
	// 1: general error (unreadable input).
	if code, _, _ := runCLI(t, filepath.Join(dir, "missing.asy")); code != exitError {
		t.Fatalf("missing input exit %d, want %d", code, exitError)
	}
	// 64: usage.
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Fatalf("no-args exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-bogus-flag"); code != exitUsage {
		t.Fatalf("bad-flag exit %d, want %d", code, exitUsage)
	}
}

// The durability contract end to end: a journaled run killed mid-flight
// resumes to a stdout byte-identical to the uninterrupted run's.
func TestJournalCrashResume(t *testing.T) {
	dir := t.TempDir()

	refCode, refOut, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", filepath.Join(dir, "ref.aqj"), glucose)
	if refCode != exitCompleted {
		t.Fatalf("reference run exit %d", refCode)
	}

	crashPath := filepath.Join(dir, "crash.aqj")
	code, _, errw := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "5", glucose)
	if code != exitAborted {
		t.Fatalf("crash run exit %d, want %d (stderr: %s)", code, exitAborted, errw)
	}

	code, out, errw := runCLI(t, "-resume", crashPath, glucose)
	if code != refCode {
		t.Fatalf("resume exit %d, want %d (stderr: %s)", code, refCode, errw)
	}
	if out != refOut {
		t.Errorf("resumed stdout differs from uninterrupted run\n got: %q\nwant: %q", out, refOut)
	}
	if !strings.Contains(errw, "resuming at boundary") {
		t.Errorf("resume notice missing from stderr: %s", errw)
	}

	// A second resume finds the journal closed: nothing to do.
	if code, _, errw := runCLI(t, "-resume", crashPath, glucose); code != exitResumeFailed {
		t.Fatalf("resume of closed journal exit %d, want %d (stderr: %s)", code, exitResumeFailed, errw)
	}
}

// Resume refuses a program that does not hash-match the journaled one.
func TestResumeRejectsDifferentProgram(t *testing.T) {
	dir := t.TempDir()
	crashPath := filepath.Join(dir, "crash.aqj")
	if code, _, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "3", glucose); code != exitAborted {
		t.Fatal("setup crash run did not abort")
	}
	code, _, errw := runCLI(t, "-resume", crashPath, "../../testdata/glycomics.asy")
	if code != exitResumeFailed {
		t.Fatalf("hash-mismatched resume exit %d, want %d", code, exitResumeFailed)
	}
	if !strings.Contains(errw, "different program") {
		t.Errorf("mismatch diagnostic missing: %s", errw)
	}
	if code, _, _ := runCLI(t, "-resume", filepath.Join(dir, "missing.aqj"), glucose); code != exitResumeFailed {
		t.Fatalf("missing journal resume exit %d, want %d", code, exitResumeFailed)
	}
}

// Exit code 6 is the proof-carrying-plans contract: a resume whose
// journal carries a certificate hash that does not match the re-derived
// (and freshly re-certified) plan refuses to execute a single
// instruction and appends no outcome record — the journal stays intact
// as crash evidence. -no-certify is the documented escape hatch.
func TestResumeRejectsCorruptedCertificate(t *testing.T) {
	dir := t.TempDir()
	crashPath := filepath.Join(dir, "crash.aqj")
	if code, _, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "5", glucose); code != exitAborted {
		t.Fatal("setup crash run did not abort")
	}

	// Forge a journal identical to the crashed one except for the begin
	// record's certificate hash (the frame CRCs protect against bit rot,
	// so the corruption must be re-encoded like an attacker or a buggy
	// tool would).
	f, err := os.Open(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := journal.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Kind != journal.KindBegin || recs[0].Begin.CertHash == 0 {
		t.Fatalf("crashed journal has no certificate hash in its begin record: %+v", recs[0])
	}
	recs[0].Begin.CertHash ^= 0xdeadbeef
	forgedPath := filepath.Join(dir, "forged.aqj")
	w, ff, err := journal.Create(vfs.OS{}, forgedPath, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ff.Close()

	code, out, errw := runCLI(t, "-resume", forgedPath, glucose)
	if code != exitCertFailed {
		t.Fatalf("corrupted-certificate resume exit %d, want %d (stderr: %s)", code, exitCertFailed, errw)
	}
	if out != "" {
		t.Errorf("refused resume produced stdout: %q", out)
	}
	if !strings.Contains(errw, "certificate hash mismatch") {
		t.Errorf("certificate diagnostic missing from stderr: %s", errw)
	}
	// No outcome record: the journal is still open, exactly as the crash
	// left it, so a corrected binary (or -no-certify) can still resume it.
	f, err = os.Open(forgedPath)
	if err != nil {
		t.Fatal(err)
	}
	after, err := journal.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(recs) {
		t.Errorf("refused resume changed the journal: %d records, want %d", len(after), len(recs))
	}
	for _, r := range after {
		if r.Kind == journal.KindOutcome {
			t.Errorf("refused resume left an outcome record: %+v", r.Outcome)
		}
	}

	// The escape hatch skips the hash check and completes the run.
	if code, _, errw := runCLI(t, "-no-certify", "-resume", forgedPath, glucose); code != exitCompleted {
		t.Fatalf("-no-certify resume exit %d, want %d (stderr: %s)", code, exitCompleted, errw)
	}
}

// A resume over a torn journal tail (process died mid-append) reports
// the truncation on stderr — the reason and how many good bytes
// survived — and still finishes with the uninterrupted run's exit code
// and stdout.
func TestResumeReportsTornTail(t *testing.T) {
	dir := t.TempDir()
	refCode, refOut, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", filepath.Join(dir, "ref.aqj"), glucose)

	crashPath := filepath.Join(dir, "crash.aqj")
	if code, _, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "6", glucose); code != exitAborted {
		t.Fatal("setup crash run did not abort")
	}
	b, err := os.ReadFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(crashPath, b[:len(b)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errw := runCLI(t, "-resume", crashPath, glucose)
	if code != refCode {
		t.Fatalf("torn-tail resume exit %d, want %d (stderr: %s)", code, refCode, errw)
	}
	if out != refOut {
		t.Errorf("torn-tail resume stdout differs from uninterrupted run\n got: %q\nwant: %q", out, refOut)
	}
	if !strings.Contains(errw, "recovered journal tail") || !strings.Contains(errw, "good bytes") {
		t.Errorf("torn-tail warning missing from stderr: %s", errw)
	}
}

// -journal refuses to clobber an existing non-empty journal — it may be
// the only crash evidence of an interrupted run — unless -force-journal
// overrides.
func TestJournalNoClobber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.aqj")
	if code, _, errw := runCLI(t, "-journal", path, glucose); code != exitCompleted {
		t.Fatalf("first journaled run exit %d (stderr: %s)", code, errw)
	}
	code, _, errw := runCLI(t, "-journal", path, glucose)
	if code != exitError {
		t.Fatalf("clobbering run exit %d, want %d", code, exitError)
	}
	if !strings.Contains(errw, "refusing to clobber") {
		t.Errorf("no-clobber diagnostic missing: %s", errw)
	}
	if code, _, errw := runCLI(t, "-journal", path, "-force-journal", glucose); code != exitCompleted {
		t.Fatalf("forced journaled run exit %d (stderr: %s)", code, errw)
	}
}

// -fsfaults puts an injected filesystem under the journal: a lying fsync
// on the first append poisons the writer and aborts the run (fail-stop),
// while a malformed spec is a usage-level error.
func TestFSFaultsFlag(t *testing.T) {
	dir := t.TempDir()
	// sync #0 is the header sync inside Create, #1 the begin record; #2 is
	// the first record the recovery loop appends.
	code, _, errw := runCLI(t, "-fsfaults", "sync@2:lying",
		"-journal", filepath.Join(dir, "j.aqj"), glucose)
	if code != exitAborted {
		t.Fatalf("lying-fsync run exit %d, want %d (stderr: %s)", code, exitAborted, errw)
	}
	if code, _, _ := runCLI(t, "-fsfaults", "sync@x", glucose); code != exitError {
		t.Fatalf("bad strike spec exit %d, want %d", code, exitError)
	}
	if code, _, _ := runCLI(t, "-fsfaults", "frob=0.5", glucose); code != exitError {
		t.Fatalf("bad rate spec exit %d, want %d", code, exitError)
	}
	// A rate profile with a seed parses and runs (zero faults at rate 0 is
	// not expressible — use a tiny rate over a short run).
	if code, _, errw := runCLI(t, "-fsfaults", "write=0.0001", "-fsfault-seed", "7",
		"-journal", filepath.Join(dir, "r.aqj"), glucose); code != exitCompleted {
		t.Fatalf("low-rate fsfaults run exit %d (stderr: %s)", code, errw)
	}
}
