package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const glucose = "../../testdata/glucose.asy"

// runCLI invokes the command in-process and returns (exit, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// Exit codes are the scripting contract: each terminal status maps to a
// distinct, documented code.
func TestExitCodes(t *testing.T) {
	// 0: clean run.
	if code, _, errw := runCLI(t, glucose); code != exitCompleted {
		t.Fatalf("clean run exit %d, want %d (stderr: %s)", code, exitCompleted, errw)
	}
	// 2: completed degraded — every FU attempt fails, budget exhausted.
	code, out, _ := runCLI(t, "-faults", "fail=1", "-seed", "1", "-recover", "-retries", "1", glucose)
	if code != exitDegraded {
		t.Fatalf("degraded run exit %d, want %d", code, exitDegraded)
	}
	if !strings.Contains(out, "completed-degraded") {
		t.Fatalf("degraded summary missing: %s", out)
	}
	// 3: aborted (simulated crash).
	dir := t.TempDir()
	if code, _, _ := runCLI(t, "-journal", filepath.Join(dir, "c.aqj"), "-crash-at", "2", glucose); code != exitAborted {
		t.Fatalf("crashed run exit %d, want %d", code, exitAborted)
	}
	// 1: general error (unreadable input).
	if code, _, _ := runCLI(t, filepath.Join(dir, "missing.asy")); code != exitError {
		t.Fatalf("missing input exit %d, want %d", code, exitError)
	}
	// 64: usage.
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Fatalf("no-args exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-bogus-flag"); code != exitUsage {
		t.Fatalf("bad-flag exit %d, want %d", code, exitUsage)
	}
}

// The durability contract end to end: a journaled run killed mid-flight
// resumes to a stdout byte-identical to the uninterrupted run's.
func TestJournalCrashResume(t *testing.T) {
	dir := t.TempDir()

	refCode, refOut, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", filepath.Join(dir, "ref.aqj"), glucose)
	if refCode != exitCompleted {
		t.Fatalf("reference run exit %d", refCode)
	}

	crashPath := filepath.Join(dir, "crash.aqj")
	code, _, errw := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "5", glucose)
	if code != exitAborted {
		t.Fatalf("crash run exit %d, want %d (stderr: %s)", code, exitAborted, errw)
	}

	code, out, errw := runCLI(t, "-resume", crashPath, glucose)
	if code != refCode {
		t.Fatalf("resume exit %d, want %d (stderr: %s)", code, refCode, errw)
	}
	if out != refOut {
		t.Errorf("resumed stdout differs from uninterrupted run\n got: %q\nwant: %q", out, refOut)
	}
	if !strings.Contains(errw, "resuming at boundary") {
		t.Errorf("resume notice missing from stderr: %s", errw)
	}

	// A second resume finds the journal closed: nothing to do.
	if code, _, errw := runCLI(t, "-resume", crashPath, glucose); code != exitResumeFailed {
		t.Fatalf("resume of closed journal exit %d, want %d (stderr: %s)", code, exitResumeFailed, errw)
	}
}

// Resume refuses a program that does not hash-match the journaled one.
func TestResumeRejectsDifferentProgram(t *testing.T) {
	dir := t.TempDir()
	crashPath := filepath.Join(dir, "crash.aqj")
	if code, _, _ := runCLI(t, "-faults", "moderate", "-seed", "42",
		"-journal", crashPath, "-crash-at", "3", glucose); code != exitAborted {
		t.Fatal("setup crash run did not abort")
	}
	code, _, errw := runCLI(t, "-resume", crashPath, "../../testdata/glycomics.asy")
	if code != exitResumeFailed {
		t.Fatalf("hash-mismatched resume exit %d, want %d", code, exitResumeFailed)
	}
	if !strings.Contains(errw, "different program") {
		t.Errorf("mismatch diagnostic missing: %s", errw)
	}
	if code, _, _ := runCLI(t, "-resume", filepath.Join(dir, "missing.aqj"), glucose); code != exitResumeFailed {
		t.Fatalf("missing journal resume exit %d, want %d", code, exitResumeFailed)
	}
}
