// Command fluidvet is the vet tool enforcing aquavol's determinism,
// diagnostics, and durability invariants. It speaks the go command's
// -vettool protocol; run it as
//
//	go build -o fluidvet ./cmd/fluidvet
//	go vet -vettool=$PWD/fluidvet ./...
//
// See internal/fluidvet for the analyzers and the //fluidvet:allow
// escape hatch, and DESIGN.md §6e for the invariants each one guards.
package main

import "aquavol/internal/fluidvet"

func main() {
	fluidvet.Main(fluidvet.All()...)
}
