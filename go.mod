module aquavol

go 1.22
