// Glucose: the full compiler pipeline on the paper's Fig. 9 assay —
// high-level source → AIS code → volume plan → execution on the AquaCore
// simulator.
//
// The assay builds a four-point calibration curve of glucose against a
// reagent (mix ratios 1:1, 1:2, 1:4, 1:8) plus the sample measurement.
// The reagent is used five times, making it the volume bottleneck: it is
// dispensed at the full 100 nl machine capacity and the smallest resulting
// transfer is 3.3 nl — comfortably above the 0.1 nl least count, so the
// whole plan is computed at compile time (§4.2).
//
// Run with: go run ./examples/glucose
package main

import (
	"fmt"
	"log"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
)

func main() {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	plan, err := core.DAGSolve(ep.Graph, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- volume plan ---")
	fmt.Print(plan)

	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- AIS listing (compare paper Fig. 9b) ---")
	fmt.Print(cg.Prog)

	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- simulation ---")
	fmt.Printf("wet %d instrs / %.0f s, dry %d instrs / %.3g s, clean=%v\n",
		res.WetInstrs, res.WetSeconds, res.DryInstrs, res.DrySeconds, res.Clean())
	for i := 1; i <= 5; i++ {
		key := fmt.Sprintf("Result[%d]", i)
		fmt.Printf("%s = %.2f (sensed volume, nl)\n", key, res.Dry[key])
	}
}
