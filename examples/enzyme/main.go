// Enzyme: the paper's hardest case study (Fig. 14) — extreme mix ratios
// AND numerous uses, defeating both DAGSolve and LP until the DAG is
// rewritten by cascading and static replication.
//
// The assay dilutes enzyme, substrate, and inhibitor 1:1, 1:9, 1:99, and
// 1:999 against a shared diluent and measures all 64 combinations. The
// 1:999 dilutions underflow (9.8 pl < the 100 pl least count); cascading
// each into three 1:9 stages raises the minimum to 65.5 pl (still short,
// because the diluent's uses grew from 12 to 18); replicating the diluent
// three ways brings it to 196 pl and the assay becomes executable.
//
// This example walks those steps explicitly, then shows the automatic
// Fig. 6 hierarchy reaching feasibility on its own, and finally runs the
// transformed assay on the simulator.
//
// Run with: go run ./examples/enzyme
package main

import (
	"fmt"
	"log"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lang"
)

func report(stage string, g *dag.Graph) *core.Plan {
	plan, err := core.DAGSolve(g, core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	dil := g.NodeByName("diluent")
	_, min := plan.MinDispense()
	fmt.Printf("%-28s diluent Vnorm %6.2f   min dispense %7.1f pl   feasible=%v\n",
		stage, plan.NodeVnorm[dil.ID()], min*1000, plan.Feasible())
	return plan
}

func main() {
	fmt.Println("step-by-step (paper Fig. 14):")
	g := assays.EnzymeDAG(4)
	report("baseline", g)

	// Cascade each 1:999 dilution into three 1:9 stages.
	for _, name := range []string{"inh_dil4", "enz_dil4", "sub_dil4"} {
		if err := g.Cascade(g.NodeByName(name), 3); err != nil {
			log.Fatal(err)
		}
	}
	report("+ cascade (three 1:9)", g)

	// Replicate the diluent three ways, one replica per reagent.
	groups := map[string]int{"inh": 0, "enz": 1, "sub": 2}
	if _, err := g.Replicate(g.NodeByName("diluent"), 3, func(e *dag.Edge) int {
		return groups[e.To.Name[:3]]
	}); err != nil {
		log.Fatal(err)
	}
	plan := report("+ replicate diluent ×3", g)

	fmt.Println("\nautomatic hierarchy (Fig. 6):")
	auto, err := core.Manage(assays.EnzymeDAG(4), core.DefaultConfig(), core.ManageOptions{SkipLP: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range auto.Transforms {
		fmt.Println("  applied:", tr)
	}
	_, autoMin := auto.Plan.MinDispense()
	fmt.Printf("  feasible=%v, min dispense %.1f pl, %d attempts\n",
		auto.Plan.Feasible(), autoMin*1000, auto.Attempts)

	// Execute the manually transformed assay end to end. The elaborated
	// ops come from the language front end; codegen follows the
	// transformed graph (the compiled enzyme source's graph is
	// structurally identical to assays.EnzymeDAG(4), so we compile and
	// re-apply the same transforms to its graph).
	fmt.Println("\nsimulating the transformed assay:")
	ep, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		log.Fatal(err)
	}
	tg := ep.Graph
	for _, name := range []string{"Diluted_Inhibitor[4]", "Diluted_Enzyme[4]", "Diluted_Substrate[4]"} {
		if err := tg.Cascade(tg.NodeByName(name), 3); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tg.Replicate(tg.Node(ep.Inputs["diluent"]), 3, nil); err != nil {
		log.Fatal(err)
	}
	tplan, err := core.DAGSolve(tg, core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := codegen.Generate(ep, tg, codegen.Config{})
	if err != nil {
		log.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, tg, aquacore.PlanSource{Plan: tplan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d wet instructions, %.0f s fluidic time, clean=%v\n",
		res.WetInstrs, res.WetSeconds, res.Clean())
	_ = plan
}
