// Glycomics: run-time volume assignment for an assay with statically
// unknown volumes (§3.5, Fig. 13).
//
// The assay's three separations produce volumes only measurable at run
// time, so the DAG is partitioned into four regions: Vnorms for every
// region are computed at compile time; absolute volumes for a region are
// assigned the moment the separation feeding it reports its measured
// output. The shared buffer3a is used in two different regions and is
// conservatively split 50/50 at compile time; the second separation's
// effluent enters the third region with Vnorm 1/204, exactly as in the
// paper's Fig. 13.
//
// Run with: go run ./examples/glycomics
package main

import (
	"fmt"
	"log"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
)

func main() {
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	sp, err := core.NewStagedPlan(ep.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partitions: %d (paper Fig. 13: 4)\n", sp.NumParts())
	for _, b := range sp.Partition.Bindings {
		ci := sp.Partition.Parts[b.Part].Node(b.NodeID)
		src := ep.Graph.Node(b.SourceID)
		kind := "static split of input"
		if b.SourceUnknown {
			kind = "measured at run time"
		} else if b.SourcePart >= 0 {
			kind = fmt.Sprintf("planned in part %d", b.SourcePart)
		}
		fmt.Printf("  part %d gets %-22s share %.2f  Vnorm %.5f  from %s (%s)\n",
			b.Part, ci.Name, b.Share, sp.Vnorms[b.Part].Node[b.NodeID], src.Name, kind)
	}

	done, err := sp.SolveStatic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved at compile time: parts %v; the rest wait for measurements\n\n", done)

	// Execute: the machine measures each separation (yield 50% here) and
	// the StagedSource solves the next partition on the fly.
	src, err := aquacore.NewStagedSource(sp, nil)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		log.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{SeparationYield: 0.5}, ep.Graph, src)
	res, err := m.Run(cg.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: %d wet instrs, %.0f s fluidic time, clean=%v\n",
		res.WetInstrs, res.WetSeconds, res.Clean())
	for i, p := range src.Plans() {
		state := "solved"
		if p == nil {
			state = "never needed"
		}
		fmt.Printf("  part %d: %s\n", i, state)
	}
}
