// Quickstart: build an assay DAG with the library API, run DAGSolve, and
// print the volume plan.
//
// This is the paper's running example (Fig. 2): mix A:B in 1:4 giving K,
// B:C in 2:1 giving L, then K:L in 2:1 and L:C in 2:3 as the two outputs.
// DAGSolve normalizes the bottleneck fluid (B) to the 100 nl machine
// maximum and scales everything else proportionally (Fig. 5).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

func main() {
	g := dag.New()
	a := g.AddInput("A")
	b := g.AddInput("B")
	c := g.AddInput("C")
	k := g.AddMix("K", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: 4})
	l := g.AddMix("L", dag.Part{Source: b, Ratio: 2}, dag.Part{Source: c, Ratio: 1})
	g.AddMix("M", dag.Part{Source: k, Ratio: 2}, dag.Part{Source: l, Ratio: 1})
	g.AddMix("N", dag.Part{Source: l, Ratio: 2}, dag.Part{Source: c, Ratio: 3})

	cfg := core.DefaultConfig() // 100 nl capacity, 0.1 nl least count
	plan, err := core.DAGSolve(g, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// Round to integer multiples of the least count (the IVol problem)
	// and report the ratio error that rounding introduced.
	ip := core.Round(plan, cfg)
	fmt.Printf("\nafter IVol rounding: %s\n", ip)

	// The same plan through the LP formulation (what the paper solves
	// with Matlab's linprog) for comparison.
	lpPlan, err := core.SolveLP(g, cfg, core.FormulateOptions{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	_, minDS := plan.MinDispense()
	_, minLP := lpPlan.MinDispense()
	fmt.Printf("\nmin dispense: DAGSolve %.2f nl, LP %.2f nl (both above the 0.1 nl least count)\n",
		minDS, minLP)
}
