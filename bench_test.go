// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md's experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// The long Enzyme10 LP benchmark only runs with -tags none via the
// volbench CLI (-full); here the default sweep stops where a dense
// simplex stays interactive.
package aquavol

import (
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/ilp"
	"aquavol/internal/lang"
	"aquavol/internal/lp"
	"aquavol/internal/regen"
)

func cfg() core.Config { return core.DefaultConfig() }

func benchDAGSolve(b *testing.B, g *dag.Graph) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err := core.DAGSolve(g, cfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = plan
	}
}

func benchLP(b *testing.B, g *dag.Graph, opts core.FormulateOptions) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := core.Formulate(g, cfg(), opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Solve(lp.Options{}); err != nil && err != core.ErrLPInfeasible {
			b.Fatal(err)
		}
	}
}

// E1 (Fig. 5): the worked example.
func BenchmarkDAGSolveFig2(b *testing.B) { benchDAGSolve(b, assays.Fig2DAG()) }

// E2/E6 (Fig. 12, Table 2 row 1).
func BenchmarkDAGSolveGlucose(b *testing.B) { benchDAGSolve(b, assays.GlucoseDAG()) }
func BenchmarkLPGlucose(b *testing.B)       { benchLP(b, assays.GlucoseDAG(), core.FormulateOptions{}) }

// E3/E6 (Fig. 13, Table 2 row 2): partitioned glycomics solve, total over
// all four parts as the paper reports.
func BenchmarkDAGSolveGlycomics(b *testing.B) {
	g := assays.GlycomicsDAG()
	c := cfg()
	avail := func(ci *dag.Node) (float64, bool) {
		if ci.SourceIsInput {
			return ci.Share * c.MaxCapacity, true
		}
		return ci.Share * 40, true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := core.NewStagedPlan(g, c)
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < sp.NumParts(); p++ {
			if _, err := core.Dispense(sp.Vnorms[p], c, avail); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E4/E6 (Fig. 14, Table 2 row 3).
func BenchmarkDAGSolveEnzyme(b *testing.B) { benchDAGSolve(b, assays.EnzymeDAG(4)) }
func BenchmarkLPEnzyme(b *testing.B)       { benchLP(b, assays.EnzymeDAG(4), core.FormulateOptions{}) }

// E6 (Table 2 row 4): Enzyme10. DAGSolve stays in milliseconds while the
// LP is deferred to volbench -full (minutes, as in the paper).
func BenchmarkDAGSolveEnzyme10(b *testing.B) { benchDAGSolve(b, assays.EnzymeDAG(10)) }

// E6b: the scaling sweep's largest interactive LP point.
func BenchmarkLPEnzyme5(b *testing.B) { benchLP(b, assays.EnzymeDAG(5), core.FormulateOptions{}) }

// E7 (§4.3 ablation): LP with DAGSolve's artificial constraints added.
func BenchmarkLPGlucoseExtraConstraints(b *testing.B) {
	benchLP(b, assays.GlucoseDAG(), core.FormulateOptions{FlowConservation: true, EqualOutputs: true})
}
func BenchmarkLPEnzymeExtraConstraints(b *testing.B) {
	benchLP(b, assays.EnzymeDAG(4), core.FormulateOptions{FlowConservation: true, EqualOutputs: true})
}

// E8 (§4.3): ILP on glucose (tractable; enzyme exhausts any sane budget,
// shown in volbench rather than as a benchmark).
func BenchmarkILPGlucose(b *testing.B) {
	c := cfg()
	unitCfg := core.Config{
		MaxCapacity: c.MaxCapacity / c.LeastCount,
		LeastCount:  1,
		OutputSkew:  c.OutputSkew,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := core.Formulate(assays.GlucoseDAG(), unitCfg, core.FormulateOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ilp.Solve(f.Prob, ilp.Options{MaxNodes: 20000}); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 (§4.3): regeneration counting without volume management.
func BenchmarkRegenGlucose(b *testing.B) {
	g := assays.GlucoseDAG()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regen.CountNaive(g, cfg(), regen.Options{})
	}
}

func BenchmarkRegenEnzyme10(b *testing.B) {
	g := assays.EnzymeDAG(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regen.CountNaive(g, cfg(), regen.Options{})
	}
}

// E5 (§4.2): IVol rounding.
func BenchmarkRoundGlucose(b *testing.B) {
	plan, err := core.DAGSolve(assays.GlucoseDAG(), cfg(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Round(plan, cfg())
	}
}

// Whole-pipeline benchmarks: compile, manage, generate, simulate.
func BenchmarkCompileGlucose(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile(assays.GlucoseSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileEnzyme10(b *testing.B) {
	src := assays.EnzymeSource(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManageEnzyme(b *testing.B) {
	g := assays.EnzymeDAG(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Manage(g, cfg(), core.ManageOptions{SkipLP: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateGlucose(b *testing.B) {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, cfg(), nil)
	if err != nil {
		b.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
		if _, err := m.Run(cg.Prog); err != nil {
			b.Fatal(err)
		}
	}
}
