// Whole-pipeline property tests: random assay sources are generated,
// compiled, volume-managed, code-generated, and executed on the
// simulator. Any feasible plan must execute with zero volume events and
// preserve every mix's specified composition — this exercises the parser,
// elaborator, DAGSolve, codegen, and machine volume accounting together.
package aquavol

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aquavol/internal/aquacore"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lang"
)

// randomAssay generates a random, statically-known assay source.
func randomAssay(r *rand.Rand) string {
	var b strings.Builder
	nIn := 2 + r.Intn(3)
	nOps := 2 + r.Intn(8)
	b.WriteString("ASSAY rnd START\n")
	b.WriteString("fluid ")
	var fluids []string
	for i := 0; i < nIn; i++ {
		f := fmt.Sprintf("in%d", i)
		fluids = append(fluids, f)
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f)
	}
	var derived []string
	for i := 0; i < nOps; i++ {
		derived = append(derived, fmt.Sprintf("d%d", i))
	}
	b.WriteString(", " + strings.Join(derived, ", ") + ";\n")
	fmt.Fprintf(&b, "VAR R[%d];\n", nOps)

	avail := append([]string(nil), fluids...)
	senses := 0
	for i := 0; i < nOps; i++ {
		switch r.Intn(4) {
		case 0, 1: // mix two distinct fluids
			a := avail[r.Intn(len(avail))]
			c := avail[r.Intn(len(avail))]
			for c == a {
				c = avail[r.Intn(len(avail))]
			}
			fmt.Fprintf(&b, "%s = MIX %s AND %s IN RATIOS %d:%d FOR %d;\n",
				derived[i], a, c, 1+r.Intn(9), 1+r.Intn(9), 5+r.Intn(20))
			avail = append(avail, derived[i])
		case 2: // incubate
			a := avail[r.Intn(len(avail))]
			fmt.Fprintf(&b, "%s = INCUBATE %s AT %d FOR %d;\n",
				derived[i], a, 30+r.Intn(40), 10+r.Intn(100))
			avail = append(avail, derived[i])
		case 3: // sense something
			a := avail[r.Intn(len(avail))]
			senses++
			fmt.Fprintf(&b, "SENSE OPTICAL %s INTO R[%d];\n", a, senses)
		}
	}
	// Ensure at least one sink so the DAG has an output.
	fmt.Fprintf(&b, "SENSE OPTICAL %s INTO R[%d];\n", avail[len(avail)-1], nOps)
	b.WriteString("END\n")
	return b.String()
}

func TestQuickPipelineCleanExecution(t *testing.T) {
	cfg := core.DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomAssay(r)
		ep, err := lang.Compile(src)
		if err != nil {
			t.Logf("compile failed for:\n%s\n%v", src, err)
			return false
		}
		plan, err := core.DAGSolve(ep.Graph, cfg, nil)
		if err != nil {
			t.Logf("DAGSolve failed: %v", err)
			return false
		}
		if !plan.Feasible() {
			return true // deep random dilutions may legitimately underflow
		}
		cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
		if err != nil {
			t.Logf("codegen failed: %v", err)
			return false
		}
		m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
		res, err := m.Run(cg.Prog)
		if err != nil {
			t.Logf("run failed for:\n%s\n%v", src, err)
			return false
		}
		if !res.Clean() {
			t.Logf("events for:\n%s\n%v", src, res.Events)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// composition computes each node's composition over input fluids from the
// DAG structure alone (edge fractions), for cross-checking transforms.
func composition(g *dag.Graph) map[int]map[string]float64 {
	comp := map[int]map[string]float64{}
	for _, n := range g.TopoOrder() {
		if n.IsSource() {
			comp[n.ID()] = map[string]float64{n.Name: 1}
			continue
		}
		c := map[string]float64{}
		for _, e := range n.In() {
			for k, v := range comp[e.From.ID()] {
				c[k] += e.Frac * v
			}
		}
		comp[n.ID()] = c
	}
	return comp
}

// Property: cascading preserves the final mixture's composition exactly —
// the whole point of replacing 1:R with staged mixes plus excess.
func TestQuickCascadePreservesComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		R := float64(50 + r.Intn(2000))
		levels := 2 + r.Intn(3)
		g := dag.New()
		a := g.AddInput("minor")
		b := g.AddInput("major")
		m := g.AddMix("mix", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: R})
		g.AddUnary(dag.Sense, "s", m)
		want := composition(g)[m.ID()]
		if err := g.Cascade(m, levels); err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		got := composition(g)[m.ID()]
		for k, v := range want {
			if math.Abs(got[k]-v) > 1e-9 {
				t.Logf("R=%v levels=%d: component %s = %v, want %v", R, levels, k, got[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replication preserves every consumer's composition (replicas
// are perfect stand-ins for the original fluid).
func TestQuickReplicationPreservesComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := dag.New()
		a := g.AddInput("a")
		b := g.AddInput("b")
		x := g.AddMix("x", dag.Part{Source: a, Ratio: float64(1 + r.Intn(5))},
			dag.Part{Source: b, Ratio: float64(1 + r.Intn(5))})
		var sinks []*dag.Node
		for i := 0; i < 2+r.Intn(6); i++ {
			m := g.AddMix("m", dag.Part{Source: x, Ratio: 1}, dag.Part{Source: b, Ratio: 2})
			g.AddUnary(dag.Sense, "s", m)
			sinks = append(sinks, m)
		}
		want := map[int]map[string]float64{}
		comps := composition(g)
		for _, s := range sinks {
			want[s.ID()] = comps[s.ID()]
		}
		if _, err := g.Replicate(x, 2+r.Intn(3), nil); err != nil {
			return false
		}
		comps = composition(g)
		for _, s := range sinks {
			for k, v := range want[s.ID()] {
				if math.Abs(comps[s.ID()][k]-v) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Manage never returns an infeasible plan, and its transforms
// leave mixture compositions of surviving original nodes unchanged.
func TestQuickManageSoundness(t *testing.T) {
	cfg := core.DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := dag.New()
		a := g.AddInput("a")
		b := g.AddInput("b")
		// A random two-stage dilution ladder with occasional extreme
		// ratios to provoke cascading.
		ratio := []float64{9, 99, 999, 4999}[r.Intn(4)]
		d1 := g.AddMix("d1", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: ratio})
		uses := 1 + r.Intn(16)
		for i := 0; i < uses; i++ {
			m := g.AddMix("m", dag.Part{Source: d1, Ratio: 1}, dag.Part{Source: b, Ratio: 1})
			g.AddUnary(dag.Sense, "s", m)
		}
		res, err := core.Manage(g, cfg, core.ManageOptions{SkipLP: true})
		if err != nil {
			// Unmanageable is acceptable for the harshest draws; a nil
			// result with error is the contract.
			return res == nil || res.Plan == nil || !res.Plan.Feasible()
		}
		if !res.Plan.Feasible() {
			return false
		}
		// The original graph must be untouched.
		return g.NumNodes() == 3+2*uses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
